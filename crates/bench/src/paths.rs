//! The four measured paths of Table 1, each exposed as a uniform
//! send/recv pair so the measurement loop is identical.
//!
//! "We measured both latency and throughput of reading and writing
//! bytes between two processes for a number of different paths. ... The
//! latency is measured as the round trip time for a byte sent from one
//! process to another and back again. Throughput is measured using 16k
//! writes from one process to another."

use plan9_datakit::urp::{urp_dial, UrpConn, UrpListener};
use plan9_inet::il::IlConn;
use plan9_inet::ip::{IpConfig, IpStack};
use plan9_netsim::cyclone::{cyclone_link, CycloneEnd};
use plan9_netsim::ether::EtherSegment;
use plan9_netsim::fabric::DatakitSwitch;
use plan9_netsim::pipe::{pipe_pair, PipeEnd};
use plan9_streams::stream_pipe;
use plan9_streams::Stream;
use plan9_netsim::profile::{LinkProfile, Profiles};
use plan9_support::{time, vtime};
use std::sync::Arc;
use std::time::Duration;

/// A uniform message channel endpoint for measurement.
pub trait BenchChan: Send + 'static {
    /// Sends one message.
    fn send(&self, msg: &[u8]);
    /// Receives one message; panics on hangup (benchmarks own both
    /// ends).
    fn recv(&self) -> Vec<u8>;
}

impl BenchChan for Arc<Stream> {
    fn send(&self, msg: &[u8]) {
        self.write(msg).expect("stream write");
    }
    fn recv(&self) -> Vec<u8> {
        self.read(1 << 16).expect("stream read")
    }
}

impl BenchChan for PipeEnd {
    fn send(&self, msg: &[u8]) {
        PipeEnd::send(self, msg).expect("pipe send");
    }
    fn recv(&self) -> Vec<u8> {
        PipeEnd::recv(self).expect("pipe recv")
    }
}

impl BenchChan for Arc<IlConn> {
    fn send(&self, msg: &[u8]) {
        IlConn::send(self, msg).expect("il send");
    }
    fn recv(&self) -> Vec<u8> {
        IlConn::recv(self).expect("il recv").expect("il eof")
    }
}

impl BenchChan for Arc<UrpConn> {
    fn send(&self, msg: &[u8]) {
        UrpConn::send(self, msg).expect("urp send");
    }
    fn recv(&self) -> Vec<u8> {
        UrpConn::recv(self).expect("urp eof")
    }
}

impl BenchChan for CycloneEnd {
    fn send(&self, msg: &[u8]) {
        CycloneEnd::send(self, msg).expect("cyclone send");
    }
    fn recv(&self) -> Vec<u8> {
        CycloneEnd::recv(self).expect("cyclone eof")
    }
}

/// Which calibration to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Calibration {
    /// 1993 hardware parameters: reproduces Table 1's numbers.
    Calibrated,
    /// No pacing: raw code-path speed on the host machine.
    Fast,
}

fn ether_profile(c: Calibration) -> LinkProfile {
    match c {
        Calibration::Calibrated => Profiles::ether_calibrated(),
        Calibration::Fast => Profiles::ether_fast(),
    }
}

fn datakit_profile(c: Calibration) -> LinkProfile {
    match c {
        Calibration::Calibrated => Profiles::datakit_calibrated(),
        Calibration::Fast => Profiles::datakit_fast(),
    }
}

fn cyclone_profile(c: Calibration) -> LinkProfile {
    match c {
        Calibration::Calibrated => Profiles::cyclone_calibrated(),
        Calibration::Fast => Profiles::cyclone_fast(),
    }
}

/// Builds the `pipes` path: a real stream pipe (§2.4 — "pipes ... are
/// implemented using streams"), so the measurement exercises the block
/// and queue machinery.
pub fn pipes_path() -> (Arc<Stream>, Arc<Stream>) {
    stream_pipe()
}

/// A raw channel pipe without the stream layer, for the ablation bench.
pub fn raw_pipe_path() -> (PipeEnd, PipeEnd) {
    pipe_pair()
}

/// Builds the `IL/ether` path: real IL code over the (possibly paced)
/// Ethernet.
pub fn il_ether_path(c: Calibration) -> (Arc<IlConn>, Arc<IlConn>) {
    let seg = EtherSegment::new(ether_profile(c));
    let a = IpStack::new(seg.attach([8, 0, 0, 0xb, 0, 1]), IpConfig::local("10.11.0.1"));
    let b = IpStack::new(seg.attach([8, 0, 0, 0xb, 0, 2]), IpConfig::local("10.11.0.2"));
    let listener = b.il_module().listen(&b, 17008).expect("listen");
    // checked: spawn fails only on OS thread exhaustion at setup
    let t = vtime::kproc("il-accept", move || listener.accept().expect("accept")).expect("spawn");
    let ca = a
        .il_module()
        .connect(&a, b.addr(), 17008)
        .expect("connect");
    let cb = t.join().expect("join");
    // Keep the stacks alive for the life of the conns.
    std::mem::forget(a);
    std::mem::forget(b);
    (ca, cb)
}

/// Builds the `URP/Datakit` path.
pub fn urp_datakit_path(c: Calibration) -> (Arc<UrpConn>, Arc<UrpConn>) {
    let sw = DatakitSwitch::new(datakit_profile(c));
    let a = sw.attach("nj/astro/a").expect("attach a");
    let b = sw.attach("nj/astro/b").expect("attach b");
    let listener = UrpListener::new(b);
    // checked: spawn fails only on OS thread exhaustion at setup
    let t = vtime::kproc("urp-accept", move || listener.accept().expect("accept").0).expect("spawn");
    let ca = urp_dial(&a, "nj/astro/b!bench").expect("dial");
    let cb = t.join().expect("join");
    (ca, cb)
}

/// Builds the `Cyclone` path.
pub fn cyclone_path(c: Calibration) -> (CycloneEnd, CycloneEnd) {
    cyclone_link(cyclone_profile(c))
}

/// Measures one-way throughput: `total` bytes in 16 KiB writes from one
/// process to another; returns MB/s (decimal megabytes, as the paper's
/// table uses).
pub fn measure_throughput<A, B>(tx: A, rx: B, total: usize, write_size: usize) -> f64
where
    A: BenchChan,
    B: BenchChan,
{
    // checked: spawn fails only on OS thread exhaustion at setup
    let receiver = vtime::kproc("bench-rx", move || {
        let mut got = 0usize;
        while got < total {
            got += rx.recv().len();
        }
        time::now()
    })
    .expect("spawn");
    let msg = vec![0x5au8; write_size];
    let start = time::now();
    let mut sent = 0usize;
    while sent < total {
        let n = write_size.min(total - sent);
        tx.send(&msg[..n]);
        sent += n;
    }
    let done = receiver.join().expect("receiver");
    let elapsed = done.saturating_duration_since(start);
    (total as f64 / 1e6) / elapsed.as_secs_f64()
}

/// Measures round-trip latency: one byte there and back, `reps` times;
/// returns the mean in milliseconds.
pub fn measure_latency<A, B>(near: A, far: B, reps: usize) -> f64
where
    A: BenchChan,
    B: BenchChan,
{
    // checked: spawn fails only on OS thread exhaustion at setup
    let echo = vtime::kproc("bench-echo", move || {
        for _ in 0..reps {
            let msg = far.recv();
            far.send(&msg);
        }
    })
    .expect("spawn");
    let start = time::now();
    for _ in 0..reps {
        near.send(&[0x42]);
        let _ = near.recv();
    }
    let elapsed = time::now().saturating_duration_since(start);
    echo.join().expect("echo");
    elapsed.as_secs_f64() * 1000.0 / reps as f64
}

/// A small settle pause between path setups (ARP, handshakes).
pub fn settle() {
    time::sleep(Duration::from_millis(50));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paths_carry_data_unpaced() {
        let (a, b) = pipes_path();
        BenchChan::send(&a, b"x");
        assert_eq!(BenchChan::recv(&b), b"x");
        let (a, b) = raw_pipe_path();
        a.send(b"r").unwrap();
        assert_eq!(BenchChan::recv(&b), b"r");
        let (a, b) = il_ether_path(Calibration::Fast);
        BenchChan::send(&a, b"y");
        assert_eq!(BenchChan::recv(&b), b"y");
        let (a, b) = urp_datakit_path(Calibration::Fast);
        BenchChan::send(&a, b"z");
        assert_eq!(BenchChan::recv(&b), b"z");
        let (a, b) = cyclone_path(Calibration::Fast);
        BenchChan::send(&a, b"w");
        assert_eq!(BenchChan::recv(&b), b"w");
    }

    #[test]
    fn throughput_and_latency_produce_sane_numbers() {
        let (a, b) = pipes_path();
        let mbs = measure_throughput(a, b, 1 << 20, 16 * 1024);
        assert!(mbs > 1.0, "pipes should move >1MB/s, got {mbs}");
        let (a, b) = pipes_path();
        let ms = measure_latency(a, b, 100);
        assert!(ms < 10.0, "pipe RTT should be <10ms, got {ms}");
    }
}
