//! Directory entries (the `stat` format).
//!
//! A 9P `stat`/`wstat` carries a fixed-size machine-independent directory
//! entry. Reading a directory returns an integral number of these entries.
//! Fixed size means a directory read can be seeked to any entry boundary,
//! which Plan 9 relies on.

use crate::fcall::NAME_LEN;
use crate::qid::{Qid, CHDIR};
use crate::{errstr, NineError, Result};

/// Size in bytes of an encoded directory entry.
///
/// Layout: name[28] uid[28] gid[28] qid[8] mode[4] atime[4] mtime[4]
/// length[8] type[2] dev[2] = 116 bytes.
pub const DIR_LEN: usize = 116;

/// A parsed directory entry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dir {
    /// Last path element of the file.
    pub name: String,
    /// Owner name.
    pub uid: String,
    /// Group name.
    pub gid: String,
    /// The file's qid.
    pub qid: Qid,
    /// Permissions and flags; the top bit mirrors the qid's CHDIR bit.
    pub mode: u32,
    /// Last access time, seconds since the epoch.
    pub atime: u32,
    /// Last modification time, seconds since the epoch.
    pub mtime: u32,
    /// File length in bytes; directories conventionally report 0.
    pub length: u64,
    /// Device type character (e.g. `I` for IP, `t` for tty) as a u16.
    pub dev_type: u16,
    /// Device instance.
    pub dev: u16,
}

impl Dir {
    /// Builds an entry for a file served by a device.
    pub fn file(name: &str, qid: Qid, mode: u32, owner: &str, length: u64) -> Dir {
        Dir {
            name: name.to_string(),
            uid: owner.to_string(),
            gid: owner.to_string(),
            qid,
            mode: mode & !CHDIR,
            atime: 0,
            mtime: 0,
            length,
            dev_type: 0,
            dev: 0,
        }
    }

    /// Builds an entry for a directory.
    pub fn directory(name: &str, qid: Qid, mode: u32, owner: &str) -> Dir {
        Dir {
            name: name.to_string(),
            uid: owner.to_string(),
            gid: owner.to_string(),
            qid,
            mode: mode | CHDIR,
            atime: 0,
            mtime: 0,
            length: 0,
            dev_type: 0,
            dev: 0,
        }
    }

    /// Reports whether the entry names a directory.
    pub fn is_dir(&self) -> bool {
        self.mode & CHDIR != 0
    }

    /// Encodes the entry into its fixed 116-byte wire form.
    pub fn encode(&self) -> [u8; DIR_LEN] {
        let mut buf = [0u8; DIR_LEN];
        put_name(&mut buf[0..NAME_LEN], &self.name);
        put_name(&mut buf[NAME_LEN..2 * NAME_LEN], &self.uid);
        put_name(&mut buf[2 * NAME_LEN..3 * NAME_LEN], &self.gid);
        let mut o = 3 * NAME_LEN;
        buf[o..o + 4].copy_from_slice(&self.qid.path.to_le_bytes());
        buf[o + 4..o + 8].copy_from_slice(&self.qid.version.to_le_bytes());
        o += 8;
        buf[o..o + 4].copy_from_slice(&self.mode.to_le_bytes());
        o += 4;
        buf[o..o + 4].copy_from_slice(&self.atime.to_le_bytes());
        o += 4;
        buf[o..o + 4].copy_from_slice(&self.mtime.to_le_bytes());
        o += 4;
        buf[o..o + 8].copy_from_slice(&self.length.to_le_bytes());
        o += 8;
        buf[o..o + 2].copy_from_slice(&self.dev_type.to_le_bytes());
        o += 2;
        buf[o..o + 2].copy_from_slice(&self.dev.to_le_bytes());
        buf
    }

    /// Decodes an entry from its wire form.
    ///
    /// Fails if the buffer is shorter than [`DIR_LEN`] or a name field is
    /// not valid UTF-8.
    pub fn decode(buf: &[u8]) -> Result<Dir> {
        if buf.len() < DIR_LEN {
            return Err(NineError::new(errstr::EBADMSG));
        }
        // Field readers that turn a short buffer into a decode error
        // instead of a panic (the length check above makes them
        // infallible today, but this body must stay panic-free).
        fn le16(buf: &[u8], o: usize) -> Result<u16> {
            let b = buf
                .get(o..o + 2)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| NineError::new(errstr::EBADMSG))?;
            Ok(u16::from_le_bytes(b))
        }
        fn le32(buf: &[u8], o: usize) -> Result<u32> {
            let b = buf
                .get(o..o + 4)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| NineError::new(errstr::EBADMSG))?;
            Ok(u32::from_le_bytes(b))
        }
        fn le64(buf: &[u8], o: usize) -> Result<u64> {
            let b = buf
                .get(o..o + 8)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| NineError::new(errstr::EBADMSG))?;
            Ok(u64::from_le_bytes(b))
        }
        let name = get_name(&buf[0..NAME_LEN])?;
        let uid = get_name(&buf[NAME_LEN..2 * NAME_LEN])?;
        let gid = get_name(&buf[2 * NAME_LEN..3 * NAME_LEN])?;
        let mut o = 3 * NAME_LEN;
        let qid = Qid {
            path: le32(buf, o)?,
            version: le32(buf, o + 4)?,
        };
        o += 8;
        let mode = le32(buf, o)?;
        o += 4;
        let atime = le32(buf, o)?;
        o += 4;
        let mtime = le32(buf, o)?;
        o += 4;
        let length = le64(buf, o)?;
        o += 8;
        let dev_type = le16(buf, o)?;
        o += 2;
        let dev = le16(buf, o)?;
        Ok(Dir {
            name,
            uid,
            gid,
            qid,
            mode,
            atime,
            mtime,
            length,
            dev_type,
            dev,
        })
    }

    /// Formats the entry roughly as `ls -l` does in the paper's listings.
    pub fn ls_line(&self) -> String {
        let d = if self.is_dir() { 'd' } else { '-' };
        let mut perms = String::new();
        for shift in [6u32, 3, 0] {
            let bits = (self.mode >> shift) & 7;
            perms.push(if bits & 4 != 0 { 'r' } else { '-' });
            perms.push(if bits & 2 != 0 { 'w' } else { '-' });
            perms.push(if bits & 1 != 0 { 'x' } else { '-' });
        }
        let dev = char::from_u32(self.dev_type as u32).unwrap_or('?');
        format!(
            "{}{} {} {} {:<8} {:<8} {:>8} {}",
            d, perms, dev, self.dev, self.uid, self.gid, self.length, self.name
        )
    }
}

/// Writes a NUL-padded fixed-size name field; over-long names truncate.
pub(crate) fn put_name(dst: &mut [u8], s: &str) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(dst.len() - 1);
    dst[..n].copy_from_slice(&bytes[..n]);
    for b in dst[n..].iter_mut() {
        *b = 0;
    }
}

/// Reads a NUL-padded fixed-size name field.
pub(crate) fn get_name(src: &[u8]) -> Result<String> {
    let end = src.iter().position(|&b| b == 0).unwrap_or(src.len());
    std::str::from_utf8(&src[..end])
        .map(|s| s.to_string())
        .map_err(|_| NineError::new(errstr::EBADMSG))
}

pub(crate) use get_name as decode_name;
pub(crate) use put_name as encode_name;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dir {
        Dir {
            name: "eia1ctl".into(),
            uid: "bootes".into(),
            gid: "bootes".into(),
            qid: Qid::file(42, 7),
            mode: 0o666,
            atime: 1,
            mtime: 2,
            length: 3,
            dev_type: b't' as u16,
            dev: 0,
        }
    }

    #[test]
    fn round_trip() {
        let d = sample();
        let buf = d.encode();
        assert_eq!(buf.len(), DIR_LEN);
        let d2 = Dir::decode(&buf).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn short_buffer_rejected() {
        let d = sample();
        let buf = d.encode();
        assert!(Dir::decode(&buf[..DIR_LEN - 1]).is_err());
    }

    #[test]
    fn long_name_truncated_not_panicking() {
        let mut d = sample();
        d.name = "x".repeat(100);
        let d2 = Dir::decode(&d.encode()).unwrap();
        assert_eq!(d2.name.len(), NAME_LEN - 1);
    }

    #[test]
    fn ls_line_shape() {
        let line = sample().ls_line();
        assert!(line.starts_with("-rw-rw-rw- t"), "line was: {line}");
        assert!(line.ends_with("eia1ctl"));
    }

    #[test]
    fn directory_has_chdir_in_mode_and_helper_agrees() {
        let d = Dir::directory("net", Qid::dir(1, 0), 0o555, "bootes");
        assert!(d.is_dir());
        let d2 = Dir::decode(&d.encode()).unwrap();
        assert!(d2.is_dir());
    }
}
