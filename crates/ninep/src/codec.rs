//! Binary encoding and decoding of 9P messages.
//!
//! The wire layout follows the 1st-edition convention: a one-byte message
//! type, a two-byte tag, then fixed-layout fields in little-endian order.
//! Name fields are fixed-size NUL-padded arrays ([`NAME_LEN`] bytes), so
//! every message of a given type has a predictable size — the property the
//! original `convS2M`/`convM2S` routines depended on.

use crate::dir::{decode_name, encode_name, Dir, DIR_LEN};
use crate::fcall::{
    MsgType, Rmsg, Tag, Tmsg, CHAL_LEN, DOMAIN_LEN, ERR_LEN, MAX_FDATA, NAME_LEN, TICKET_LEN,
};
use crate::qid::Qid;
use crate::{errstr, NineError, Result};

/// A little-endian byte-writer used by the encoders.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(typ: MsgType, tag: Tag) -> Enc {
        let mut buf = Vec::with_capacity(64);
        buf.push(typ as u8);
        buf.extend_from_slice(&tag.to_le_bytes());
        Enc { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn qid(&mut self, q: Qid) {
        self.u32(q.path);
        self.u32(q.version);
    }

    fn name(&mut self, s: &str, width: usize) {
        let start = self.buf.len();
        self.buf.resize(start + width, 0);
        encode_name(&mut self.buf[start..start + width], s);
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    fn fixed(&mut self, b: &[u8], width: usize) {
        let n = b.len().min(width);
        self.buf.extend_from_slice(&b[..n]);
        self.buf.resize(self.buf.len() + (width - n), 0);
    }
}

/// A little-endian byte-reader used by the decoders.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(NineError::new(errstr::EBADMSG));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Takes exactly `N` bytes as a fixed-size array; short input is a
    /// decode error, never a panic.
    fn take_arr<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.take(N)?
            .try_into()
            .map_err(|_| NineError::new(errstr::EBADMSG))
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_arr()?))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_arr()?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_arr()?))
    }

    fn qid(&mut self) -> Result<Qid> {
        Ok(Qid {
            path: self.u32()?,
            version: self.u32()?,
        })
    }

    fn name(&mut self, width: usize) -> Result<String> {
        decode_name(self.take(width)?)
    }

    fn chal(&mut self) -> Result<[u8; CHAL_LEN]> {
        self.take_arr()
    }

    fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(NineError::new(errstr::EBADMSG))
        }
    }
}

/// Encodes a request message with its tag into wire bytes.
pub fn encode_tmsg(tag: Tag, m: &Tmsg) -> Vec<u8> {
    let mut e = Enc::new(m.msg_type(), tag);
    match m {
        Tmsg::Nop => {}
        Tmsg::Osession { chal } | Tmsg::Session { chal } => e.bytes(chal),
        Tmsg::Flush { old_tag } => e.u16(*old_tag),
        Tmsg::Attach {
            fid,
            uname,
            aname,
            ticket,
        } => {
            e.u16(*fid);
            e.name(uname, NAME_LEN);
            e.name(aname, NAME_LEN);
            e.fixed(ticket, TICKET_LEN);
        }
        Tmsg::Clone { fid, new_fid } => {
            e.u16(*fid);
            e.u16(*new_fid);
        }
        Tmsg::Walk { fid, name } => {
            e.u16(*fid);
            e.name(name, NAME_LEN);
        }
        Tmsg::Clwalk { fid, new_fid, name } => {
            e.u16(*fid);
            e.u16(*new_fid);
            e.name(name, NAME_LEN);
        }
        Tmsg::Open { fid, mode } => {
            e.u16(*fid);
            e.u8(*mode);
        }
        Tmsg::Create {
            fid,
            name,
            perm,
            mode,
        } => {
            e.u16(*fid);
            e.name(name, NAME_LEN);
            e.u32(*perm);
            e.u8(*mode);
        }
        Tmsg::Read { fid, offset, count } => {
            e.u16(*fid);
            e.u64(*offset);
            e.u16(*count);
        }
        Tmsg::Write { fid, offset, data } => {
            e.u16(*fid);
            e.u64(*offset);
            e.u16(data.len() as u16);
            e.bytes(data);
        }
        Tmsg::Clunk { fid } | Tmsg::Remove { fid } | Tmsg::Stat { fid } => e.u16(*fid),
        Tmsg::Wstat { fid, stat } => {
            e.u16(*fid);
            e.bytes(&stat.encode());
        }
    }
    e.buf
}

/// Encodes a reply message with its tag into wire bytes.
pub fn encode_rmsg(tag: Tag, m: &Rmsg) -> Vec<u8> {
    let mut e = Enc::new(m.msg_type(), tag);
    match m {
        Rmsg::Nop | Rmsg::Osession | Rmsg::Flush => {}
        Rmsg::Session {
            chal,
            authid,
            authdom,
        } => {
            e.bytes(chal);
            e.name(authid, NAME_LEN);
            e.name(authdom, DOMAIN_LEN);
        }
        Rmsg::Error { ename } => e.name(ename, ERR_LEN),
        Rmsg::Attach { fid, qid }
        | Rmsg::Walk { fid, qid }
        | Rmsg::Clwalk { fid, qid }
        | Rmsg::Open { fid, qid }
        | Rmsg::Create { fid, qid } => {
            e.u16(*fid);
            e.qid(*qid);
        }
        Rmsg::Clone { fid } | Rmsg::Clunk { fid } | Rmsg::Remove { fid } | Rmsg::Wstat { fid } => {
            e.u16(*fid)
        }
        Rmsg::Read { fid, data } => {
            e.u16(*fid);
            e.u16(data.len() as u16);
            e.bytes(data);
        }
        Rmsg::Write { fid, count } => {
            e.u16(*fid);
            e.u16(*count);
        }
        Rmsg::Stat { fid, stat } => {
            e.u16(*fid);
            e.bytes(&stat.encode());
        }
    }
    e.buf
}

/// Decodes a request message, returning its tag and body.
pub fn decode_tmsg(buf: &[u8]) -> Result<(Tag, Tmsg)> {
    let mut d = Dec::new(buf);
    let typ = MsgType::from_u8(d.u8()?).ok_or_else(|| NineError::new(errstr::EBADMSG))?;
    let tag = d.u16()?;
    let m = match typ {
        MsgType::Tnop => Tmsg::Nop,
        MsgType::Tosession => Tmsg::Osession { chal: d.chal()? },
        MsgType::Tsession => Tmsg::Session { chal: d.chal()? },
        MsgType::Tflush => Tmsg::Flush { old_tag: d.u16()? },
        MsgType::Tattach => Tmsg::Attach {
            fid: d.u16()?,
            uname: d.name(NAME_LEN)?,
            aname: d.name(NAME_LEN)?,
            ticket: {
                let t = d.take(TICKET_LEN)?;
                let end = t.iter().rposition(|&b| b != 0).map(|i| i + 1).unwrap_or(0);
                t[..end].to_vec()
            },
        },
        MsgType::Tclone => Tmsg::Clone {
            fid: d.u16()?,
            new_fid: d.u16()?,
        },
        MsgType::Twalk => Tmsg::Walk {
            fid: d.u16()?,
            name: d.name(NAME_LEN)?,
        },
        MsgType::Tclwalk => Tmsg::Clwalk {
            fid: d.u16()?,
            new_fid: d.u16()?,
            name: d.name(NAME_LEN)?,
        },
        MsgType::Topen => Tmsg::Open {
            fid: d.u16()?,
            mode: d.u8()?,
        },
        MsgType::Tcreate => Tmsg::Create {
            fid: d.u16()?,
            name: d.name(NAME_LEN)?,
            perm: d.u32()?,
            mode: d.u8()?,
        },
        MsgType::Tread => Tmsg::Read {
            fid: d.u16()?,
            offset: d.u64()?,
            count: d.u16()?,
        },
        MsgType::Twrite => {
            let fid = d.u16()?;
            let offset = d.u64()?;
            let count = d.u16()? as usize;
            if count > MAX_FDATA {
                return Err(NineError::new(errstr::ETOOBIG));
            }
            Tmsg::Write {
                fid,
                offset,
                data: d.take(count)?.to_vec(),
            }
        }
        MsgType::Tclunk => Tmsg::Clunk { fid: d.u16()? },
        MsgType::Tremove => Tmsg::Remove { fid: d.u16()? },
        MsgType::Tstat => Tmsg::Stat { fid: d.u16()? },
        MsgType::Twstat => Tmsg::Wstat {
            fid: d.u16()?,
            stat: Dir::decode(d.take(DIR_LEN)?)?,
        },
        _ => return Err(NineError::new(errstr::EBADMSG)),
    };
    d.done()?;
    Ok((tag, m))
}

/// Decodes a reply message, returning its tag and body.
pub fn decode_rmsg(buf: &[u8]) -> Result<(Tag, Rmsg)> {
    let mut d = Dec::new(buf);
    let typ = MsgType::from_u8(d.u8()?).ok_or_else(|| NineError::new(errstr::EBADMSG))?;
    let tag = d.u16()?;
    let m = match typ {
        MsgType::Rnop => Rmsg::Nop,
        MsgType::Rosession => Rmsg::Osession,
        MsgType::Rsession => Rmsg::Session {
            chal: d.chal()?,
            authid: d.name(NAME_LEN)?,
            authdom: d.name(DOMAIN_LEN)?,
        },
        MsgType::Rerror => Rmsg::Error {
            ename: d.name(ERR_LEN)?,
        },
        MsgType::Rflush => Rmsg::Flush,
        MsgType::Rattach => Rmsg::Attach {
            fid: d.u16()?,
            qid: d.qid()?,
        },
        MsgType::Rclone => Rmsg::Clone { fid: d.u16()? },
        MsgType::Rwalk => Rmsg::Walk {
            fid: d.u16()?,
            qid: d.qid()?,
        },
        MsgType::Rclwalk => Rmsg::Clwalk {
            fid: d.u16()?,
            qid: d.qid()?,
        },
        MsgType::Ropen => Rmsg::Open {
            fid: d.u16()?,
            qid: d.qid()?,
        },
        MsgType::Rcreate => Rmsg::Create {
            fid: d.u16()?,
            qid: d.qid()?,
        },
        MsgType::Rread => {
            let fid = d.u16()?;
            let count = d.u16()? as usize;
            if count > MAX_FDATA {
                return Err(NineError::new(errstr::ETOOBIG));
            }
            Rmsg::Read {
                fid,
                data: d.take(count)?.to_vec(),
            }
        }
        MsgType::Rwrite => Rmsg::Write {
            fid: d.u16()?,
            count: d.u16()?,
        },
        MsgType::Rclunk => Rmsg::Clunk { fid: d.u16()? },
        MsgType::Rremove => Rmsg::Remove { fid: d.u16()? },
        MsgType::Rstat => Rmsg::Stat {
            fid: d.u16()?,
            stat: Dir::decode(d.take(DIR_LEN)?)?,
        },
        MsgType::Rwstat => Rmsg::Wstat { fid: d.u16()? },
        _ => return Err(NineError::new(errstr::EBADMSG)),
    };
    d.done()?;
    Ok((tag, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fcall::NOTAG;

    fn t_samples() -> Vec<Tmsg> {
        vec![
            Tmsg::Nop,
            Tmsg::Session { chal: [1; 8] },
            Tmsg::Flush { old_tag: 77 },
            Tmsg::Attach {
                fid: 1,
                uname: "philw".into(),
                aname: "".into(),
                ticket: vec![9, 8, 7],
            },
            Tmsg::Clone { fid: 1, new_fid: 2 },
            Tmsg::Walk {
                fid: 2,
                name: "net".into(),
            },
            Tmsg::Clwalk {
                fid: 2,
                new_fid: 3,
                name: "tcp".into(),
            },
            Tmsg::Open { fid: 3, mode: 2 },
            Tmsg::Create {
                fid: 3,
                name: "x".into(),
                perm: 0o644,
                mode: 1,
            },
            Tmsg::Read {
                fid: 3,
                offset: 1 << 40,
                count: 8192,
            },
            Tmsg::Write {
                fid: 3,
                offset: 5,
                data: b"connect 2048".to_vec(),
            },
            Tmsg::Clunk { fid: 3 },
            Tmsg::Remove { fid: 3 },
            Tmsg::Stat { fid: 3 },
            Tmsg::Wstat {
                fid: 3,
                stat: Dir::file("f", Qid::file(1, 0), 0o666, "bootes", 0),
            },
        ]
    }

    fn r_samples() -> Vec<Rmsg> {
        vec![
            Rmsg::Nop,
            Rmsg::Session {
                chal: [2; 8],
                authid: "bootes".into(),
                authdom: "research.bell-labs.com".into(),
            },
            Rmsg::Error {
                ename: "file does not exist".into(),
            },
            Rmsg::Flush,
            Rmsg::Attach {
                fid: 1,
                qid: Qid::dir(0, 0),
            },
            Rmsg::Clone { fid: 2 },
            Rmsg::Walk {
                fid: 2,
                qid: Qid::dir(4, 0),
            },
            Rmsg::Clwalk {
                fid: 3,
                qid: Qid::file(5, 1),
            },
            Rmsg::Open {
                fid: 3,
                qid: Qid::file(5, 1),
            },
            Rmsg::Create {
                fid: 3,
                qid: Qid::file(6, 0),
            },
            Rmsg::Read {
                fid: 3,
                data: vec![0xAB; 100],
            },
            Rmsg::Write { fid: 3, count: 12 },
            Rmsg::Clunk { fid: 3 },
            Rmsg::Remove { fid: 3 },
            Rmsg::Stat {
                fid: 3,
                stat: Dir::directory("net", Qid::dir(1, 0), 0o555, "bootes"),
            },
            Rmsg::Wstat { fid: 3 },
        ]
    }

    #[test]
    fn tmsg_round_trip() {
        for (i, m) in t_samples().into_iter().enumerate() {
            let tag = i as Tag;
            let buf = encode_tmsg(tag, &m);
            let (tag2, m2) = decode_tmsg(&buf).unwrap();
            assert_eq!(tag, tag2);
            assert_eq!(m, m2, "message {i}");
        }
    }

    #[test]
    fn rmsg_round_trip() {
        for (i, m) in r_samples().into_iter().enumerate() {
            let tag = (i as Tag).wrapping_add(100);
            let buf = encode_rmsg(tag, &m);
            let (tag2, m2) = decode_rmsg(&buf).unwrap();
            assert_eq!(tag, tag2);
            assert_eq!(m, m2, "message {i}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut buf = encode_tmsg(NOTAG, &Tmsg::Nop);
        buf.push(0);
        assert!(decode_tmsg(&buf).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let buf = encode_tmsg(
            1,
            &Tmsg::Walk {
                fid: 1,
                name: "x".into(),
            },
        );
        for cut in 0..buf.len() {
            assert!(decode_tmsg(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversize_write_rejected() {
        // Hand-craft a Twrite header claiming more data than MAX_FDATA.
        let mut buf = vec![MsgType::Twrite as u8, 0, 0];
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&(MAX_FDATA as u16 + 1).to_le_bytes());
        buf.resize(buf.len() + MAX_FDATA + 1, 0);
        assert!(decode_tmsg(&buf).is_err());
    }

    // NAME_LEN-bounded, NUL-free names survive the fixed field.
    const NAME_CHARS: &str =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
    // Printable ASCII for error strings.
    const ENAME_CHARS: &str =
        " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`\
         abcdefghijklmnopqrstuvwxyz{|}~";

    plan9_support::props! {
        fn prop_tmsg_round_trip(g, cases = 256) {
            let tag = g.u16_in(0..0xfffe);
            let fid = g.u16_in(0..100);
            let new_fid = g.u16_in(100..200);
            let name = g.string_of(NAME_CHARS, 0..28);
            let offset = g.u64();
            let count = g.u16_in(0..8192);
            let data = g.bytes(0..4096);
            let pick = g.usize_in(0..8);
            let m = match pick {
                0 => Tmsg::Walk { fid, name: name.clone() },
                1 => Tmsg::Clwalk { fid, new_fid, name: name.clone() },
                2 => Tmsg::Read { fid, offset, count },
                3 => Tmsg::Write { fid, offset, data: data.clone() },
                4 => Tmsg::Clone { fid, new_fid },
                5 => Tmsg::Create { fid, name: name.clone(), perm: offset as u32, mode: (count & 0x43) as u8 },
                6 => Tmsg::Clunk { fid },
                _ => {
                    // Trailing-NUL ambiguity: tickets that end in zero
                    // bytes are trimmed by the fixed-width field; keep
                    // that corner out of the generated inputs.
                    let mut ticket: Vec<u8> = data.iter().copied().take(72).collect();
                    while ticket.last() == Some(&0) {
                        ticket.pop();
                    }
                    Tmsg::Attach { fid, uname: name.clone(), aname: String::new(), ticket }
                }
            };
            let buf = encode_tmsg(tag, &m);
            let (tag2, m2) = decode_tmsg(&buf).unwrap();
            assert_eq!(tag, tag2);
            assert_eq!(m, m2);
        }

        fn prop_rmsg_round_trip(g, cases = 256) {
            let tag = g.u16_in(0..0xfffe);
            let fid = g.u16();
            let path = g.u32_in(0..0x0fff_ffff);
            let version = g.u32();
            let ename = g.string_of(ENAME_CHARS, 0..64);
            let data = g.bytes(0..4096);
            let qid = if g.bool() { Qid::dir(path, version) } else { Qid::file(path, version) };
            let m = match g.usize_in(0..6) {
                0 => Rmsg::Walk { fid, qid },
                1 => Rmsg::Open { fid, qid },
                2 => Rmsg::Read { fid, data: data.clone() },
                3 => Rmsg::Error { ename: ename.clone() },
                4 => Rmsg::Attach { fid, qid },
                _ => Rmsg::Write { fid, count: data.len() as u16 },
            };
            let buf = encode_rmsg(tag, &m);
            let (tag2, m2) = decode_rmsg(&buf).unwrap();
            assert_eq!(tag, tag2);
            assert_eq!(m, m2);
        }

        fn prop_decoder_never_panics_on_junk(g, cases = 256) {
            let junk = g.bytes(0..600);
            let _ = decode_tmsg(&junk);
            let _ = decode_rmsg(&junk);
        }
    }

    #[test]
    fn t_and_r_do_not_cross_decode() {
        let buf = encode_tmsg(1, &Tmsg::Clunk { fid: 1 });
        assert!(decode_rmsg(&buf).is_err());
        let buf = encode_rmsg(1, &Rmsg::Clunk { fid: 1 });
        assert!(decode_tmsg(&buf).is_err());
    }
}
