//! The RPC side of a 9P file server.
//!
//! [`serve`] reads T-messages from a transport, applies them to a
//! [`ProcFs`], and writes R-messages back. This is the glue that lets a
//! kernel-resident device (procedural 9P) be exported to a remote machine
//! (RPC 9P) — the reverse of the mount driver.
//!
//! The server is multithreaded, as the paper requires of `exportfs`
//! (§6.1): `open`, `read` and `write` may block (a `listen` file blocks
//! until a call arrives), so each request runs in its own worker thread
//! and replies are serialized onto the transport by a lock.

use crate::codec::{decode_tmsg, encode_rmsg};
use crate::fcall::{Fid, Rmsg, Tag, Tmsg, CHAL_LEN, MAX_FDATA};
use crate::procfs::{OpenMode, ProcFs, ServeNode};
use crate::transport::{MsgSink, MsgSource};
use crate::{errstr, NineError, Result};
use plan9_netlog::trace;
use plan9_netlog::Facility;
use plan9_support::sync::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Identity the server reports in `Rsession`.
#[derive(Debug, Clone)]
pub struct ServerIdentity {
    /// Authentication id (a user name).
    pub authid: String,
    /// Authentication domain.
    pub authdom: String,
}

impl Default for ServerIdentity {
    fn default() -> Self {
        ServerIdentity {
            authid: "bootes".to_string(),
            authdom: "plan9.sim".to_string(),
        }
    }
}

struct FidState {
    node: ServeNode,
    open: bool,
}

struct ServerShared {
    fs: Arc<dyn ProcFs>,
    fids: Mutex<HashMap<Fid, FidState>>,
    /// Tags flushed while their worker was still running; the worker's
    /// reply is suppressed when it eventually completes.
    flushed: Mutex<HashSet<Tag>>,
    sink: Mutex<Box<dyn MsgSink>>,
    identity: ServerIdentity,
}

impl ServerShared {
    fn reply(&self, tag: Tag, r: &Rmsg) {
        // Drop the reply if the request was flushed (§ Tflush semantics).
        if self.flushed.lock().remove(&tag) {
            return;
        }
        let buf = encode_rmsg(tag, r);
        let _ = self.sink.lock().sendmsg(&buf);
    }
}

/// Serves `fs` over the given transport until the peer hangs up.
///
/// Blocks the calling thread; most callers run it in a dedicated thread.
pub fn serve(
    fs: Arc<dyn ProcFs>,
    mut source: Box<dyn MsgSource>,
    sink: Box<dyn MsgSink>,
) -> Result<()> {
    serve_with_identity(fs, &mut *source, sink, ServerIdentity::default())
}

/// Serves `fs`, reporting `identity` in `Rsession` replies.
pub fn serve_with_identity(
    fs: Arc<dyn ProcFs>,
    source: &mut dyn MsgSource,
    sink: Box<dyn MsgSink>,
    identity: ServerIdentity,
) -> Result<()> {
    let shared = Arc::new(ServerShared {
        fs,
        fids: Mutex::named(HashMap::new(), "ninep.server.fids"),
        flushed: Mutex::named(HashSet::new(), "ninep.server.flushed"),
        sink: Mutex::named(sink, "ninep.server.sink"),
        identity,
    });
    let mut workers = Vec::new();
    loop {
        let raw = match source.recvmsg() {
            Ok(Some(raw)) => raw,
            Ok(None) => break,
            Err(e) => {
                cleanup(&shared);
                return Err(e);
            }
        };
        let (tag, t) = match decode_tmsg(&raw) {
            Ok(x) => x,
            Err(_) => {
                // A malformed message poisons the link; hang up, as the
                // kernel does.
                cleanup(&shared);
                return Err(NineError::new(errstr::EBADMSG));
            }
        };
        match t {
            // Cheap control messages are handled inline.
            Tmsg::Nop => shared.reply(tag, &Rmsg::Nop),
            Tmsg::Osession { .. } => shared.reply(
                tag,
                &Rmsg::Error {
                    ename: errstr::EOBSOLETE.to_string(),
                },
            ),
            Tmsg::Session { .. } => {
                // A session resets the fid space.
                let old: Vec<FidState> = {
                    let mut fids = shared.fids.lock();
                    fids.drain().map(|(_, s)| s).collect()
                };
                for s in old {
                    shared.fs.clunk(&s.node);
                }
                shared.reply(
                    tag,
                    &Rmsg::Session {
                        chal: [0u8; CHAL_LEN],
                        authid: shared.identity.authid.clone(),
                        authdom: shared.identity.authdom.clone(),
                    },
                );
            }
            Tmsg::Flush { old_tag } => {
                shared.flushed.lock().insert(old_tag);
                shared.reply(tag, &Rmsg::Flush);
            }
            other => {
                // Potentially-blocking file operations get a worker each.
                // The server opens its own root span per request: the
                // reply direction (including its IL sends and rexmits)
                // has no client handle to inherit across the wire, so
                // it is attributed to this `serve` root instead.
                let shared = Arc::clone(&shared);
                let tracer = trace::global();
                let root = if tracer.enabled() {
                    tracer.begin(&format!("serve {:?} tag {tag}", other.msg_type()))
                } else {
                    None
                };
                let worker = plan9_support::vtime::kproc("9p-worker", move || {
                    let _cur = root.as_ref().map(|h| h.set_current());
                    let h0 = plan9_support::time::now();
                    let r = handle(&shared, &other)
                        .unwrap_or_else(|e| Rmsg::Error { ename: e.0 });
                    if let Some(h) = &root {
                        h.span(Facility::NineP, "handle", h0, plan9_support::time::now());
                    }
                    shared.reply(tag, &r);
                    if let Some(h) = &root {
                        h.finish();
                    }
                })
                // checked: spawn fails only on OS thread exhaustion
                .expect("spawn 9p worker");
                workers.push(worker);
                workers.retain(|w| !w.is_finished());
            }
        }
    }
    // Kproc joins are virtual events: each parks on the clock until
    // the worker signals completion, so no census escape is needed.
    for w in workers {
        let _ = w.join();
    }
    cleanup(&shared);
    Ok(())
}

/// An event-driven per-connection 9P server: the connection-scale
/// variant of [`serve`].
///
/// [`serve`] costs a reader thread per connection plus a worker thread
/// per blocking request — fine for tens of connections, fatal for tens
/// of thousands. A `NineService` has no threads at all: feed it each
/// raw T-message as it arrives (typically from a transport readiness
/// callback running on a worker-pool shard) and it dispatches inline
/// and writes the R-message to the sink before returning. The trade is
/// that the [`ProcFs`] behind it must not block — a `MemFs` or any
/// data-at-hand filesystem qualifies; a `listen` file does not.
pub struct NineService {
    shared: Arc<ServerShared>,
}

impl NineService {
    /// Wraps `fs` for event-driven service, replying on `sink`.
    pub fn new(fs: Arc<dyn ProcFs>, sink: Box<dyn MsgSink>) -> NineService {
        Self::with_identity(fs, sink, ServerIdentity::default())
    }

    /// Like [`NineService::new`] with an explicit [`ServerIdentity`].
    pub fn with_identity(
        fs: Arc<dyn ProcFs>,
        sink: Box<dyn MsgSink>,
        identity: ServerIdentity,
    ) -> NineService {
        NineService {
            shared: Arc::new(ServerShared {
                fs,
                fids: Mutex::named(HashMap::new(), "ninep.server.fids"),
                flushed: Mutex::named(HashSet::new(), "ninep.server.flushed"),
                sink: Mutex::named(sink, "ninep.server.sink"),
                identity,
            }),
        }
    }

    /// Processes one raw T-message inline and writes the reply.
    /// Returns an error on a malformed message, which poisons the
    /// link: the caller should hang up, as the kernel does.
    pub fn input(&self, raw: &[u8]) -> Result<()> {
        let shared = &self.shared;
        let (tag, t) = match decode_tmsg(raw) {
            Ok(x) => x,
            Err(_) => {
                cleanup(shared);
                return Err(NineError::new(errstr::EBADMSG));
            }
        };
        match t {
            Tmsg::Nop => shared.reply(tag, &Rmsg::Nop),
            Tmsg::Osession { .. } => shared.reply(
                tag,
                &Rmsg::Error {
                    ename: errstr::EOBSOLETE.to_string(),
                },
            ),
            Tmsg::Session { .. } => {
                let old: Vec<FidState> = {
                    let mut fids = shared.fids.lock();
                    fids.drain().map(|(_, s)| s).collect()
                };
                for s in old {
                    shared.fs.clunk(&s.node);
                }
                shared.reply(
                    tag,
                    &Rmsg::Session {
                        chal: [0u8; CHAL_LEN],
                        authid: shared.identity.authid.clone(),
                        authdom: shared.identity.authdom.clone(),
                    },
                );
            }
            // Nothing runs long enough to flush: requests complete
            // inline, so by the time a Tflush could arrive its target
            // has already been answered.
            Tmsg::Flush { .. } => shared.reply(tag, &Rmsg::Flush),
            other => {
                let r = handle(shared, &other).unwrap_or_else(|e| Rmsg::Error { ename: e.0 });
                shared.reply(tag, &r);
            }
        }
        Ok(())
    }

    /// Connection teardown: clunks every live fid.
    pub fn hangup(&self) {
        cleanup(&self.shared);
    }
}

fn cleanup(shared: &Arc<ServerShared>) {
    let old: Vec<FidState> = {
        let mut fids = shared.fids.lock();
        fids.drain().map(|(_, s)| s).collect()
    };
    for s in old {
        shared.fs.clunk(&s.node);
    }
}

fn get_node(shared: &ServerShared, fid: Fid) -> Result<ServeNode> {
    let fids = shared.fids.lock();
    fids.get(&fid)
        .map(|s| s.node)
        .ok_or_else(|| NineError::new(errstr::EUNKNOWNFID))
}

fn get_open_node(shared: &ServerShared, fid: Fid) -> Result<ServeNode> {
    let fids = shared.fids.lock();
    match fids.get(&fid) {
        Some(s) if s.open => Ok(s.node),
        Some(_) => Err(NineError::new(errstr::ENOTOPEN)),
        None => Err(NineError::new(errstr::EUNKNOWNFID)),
    }
}

fn handle(shared: &ServerShared, t: &Tmsg) -> Result<Rmsg> {
    let fs = &shared.fs;
    match t {
        Tmsg::Attach {
            fid, uname, aname, ..
        } => {
            {
                let fids = shared.fids.lock();
                if fids.contains_key(fid) {
                    return Err(NineError::new(errstr::EFIDINUSE));
                }
            }
            let node = fs.attach(uname, aname)?;
            let qid = node.qid;
            shared
                .fids
                .lock()
                .insert(*fid, FidState { node, open: false });
            Ok(Rmsg::Attach { fid: *fid, qid })
        }
        Tmsg::Clone { fid, new_fid } => {
            let node = get_node(shared, *fid)?;
            {
                let fids = shared.fids.lock();
                if fids.contains_key(new_fid) {
                    return Err(NineError::new(errstr::EFIDINUSE));
                }
            }
            let node = fs.clone_node(&node)?;
            shared
                .fids
                .lock()
                .insert(*new_fid, FidState { node, open: false });
            Ok(Rmsg::Clone { fid: *fid })
        }
        Tmsg::Walk { fid, name } => {
            let node = get_node(shared, *fid)?;
            let next = fs.walk(&node, name)?;
            let qid = next.qid;
            if let Some(s) = shared.fids.lock().get_mut(fid) {
                s.node = next;
            }
            Ok(Rmsg::Walk { fid: *fid, qid })
        }
        Tmsg::Clwalk { fid, new_fid, name } => {
            let node = get_node(shared, *fid)?;
            {
                let fids = shared.fids.lock();
                if fids.contains_key(new_fid) {
                    return Err(NineError::new(errstr::EFIDINUSE));
                }
            }
            let cloned = fs.clone_node(&node)?;
            match fs.walk(&cloned, name) {
                Ok(next) => {
                    let qid = next.qid;
                    if next.handle != cloned.handle {
                        fs.clunk(&cloned);
                    }
                    shared.fids.lock().insert(
                        *new_fid,
                        FidState {
                            node: next,
                            open: false,
                        },
                    );
                    Ok(Rmsg::Clwalk { fid: *fid, qid })
                }
                Err(e) => {
                    // On failure the new fid is not allocated.
                    fs.clunk(&cloned);
                    Err(e)
                }
            }
        }
        Tmsg::Open { fid, mode } => {
            let node = {
                let fids = shared.fids.lock();
                match fids.get(fid) {
                    Some(s) if s.open => return Err(NineError::new(errstr::EISOPEN)),
                    Some(s) => s.node,
                    None => return Err(NineError::new(errstr::EUNKNOWNFID)),
                }
            };
            let opened = fs.open(&node, OpenMode(*mode))?;
            let qid = opened.qid;
            if let Some(s) = shared.fids.lock().get_mut(fid) {
                s.node = opened;
                s.open = true;
            }
            Ok(Rmsg::Open { fid: *fid, qid })
        }
        Tmsg::Create {
            fid,
            name,
            perm,
            mode,
        } => {
            let node = get_node(shared, *fid)?;
            let created = fs.create(&node, name, *perm, OpenMode(*mode))?;
            let qid = created.qid;
            if created.handle != node.handle {
                fs.clunk(&node);
            }
            if let Some(s) = shared.fids.lock().get_mut(fid) {
                s.node = created;
                s.open = true;
            }
            Ok(Rmsg::Create { fid: *fid, qid })
        }
        Tmsg::Read { fid, offset, count } => {
            let node = get_open_node(shared, *fid)?;
            let count = (*count as usize).min(MAX_FDATA);
            let data = fs.read(&node, *offset, count)?;
            Ok(Rmsg::Read { fid: *fid, data })
        }
        Tmsg::Write { fid, offset, data } => {
            let node = get_open_node(shared, *fid)?;
            let n = fs.write(&node, *offset, data)?;
            Ok(Rmsg::Write {
                fid: *fid,
                count: n as u16,
            })
        }
        Tmsg::Clunk { fid } => {
            let state = shared
                .fids
                .lock()
                .remove(fid)
                .ok_or_else(|| NineError::new(errstr::EUNKNOWNFID))?;
            fs.clunk(&state.node);
            Ok(Rmsg::Clunk { fid: *fid })
        }
        Tmsg::Remove { fid } => {
            let state = shared
                .fids
                .lock()
                .remove(fid)
                .ok_or_else(|| NineError::new(errstr::EUNKNOWNFID))?;
            // Remove always clunks, even on failure.
            let res = fs.remove(&state.node);
            res?;
            Ok(Rmsg::Remove { fid: *fid })
        }
        Tmsg::Stat { fid } => {
            let node = get_node(shared, *fid)?;
            let stat = fs.stat(&node)?;
            Ok(Rmsg::Stat { fid: *fid, stat })
        }
        Tmsg::Wstat { fid, stat } => {
            let node = get_node(shared, *fid)?;
            fs.wstat(&node, stat)?;
            Ok(Rmsg::Wstat { fid: *fid })
        }
        // Inline-handled messages never reach here.
        Tmsg::Nop | Tmsg::Osession { .. } | Tmsg::Session { .. } | Tmsg::Flush { .. } => {
            Err(NineError::new(errstr::EBADMSG))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_tmsg;
    use crate::procfs::MemFs;
    use crate::transport::MsgPipeEnd;

    fn start_server(fs: Arc<dyn ProcFs>) -> MsgPipeEnd {
        let (client_end, server_end) = MsgPipeEnd::pair();
        let (ssink, ssource) = server_end.split();
        std::thread::spawn(move || {
            let _ = serve(fs, Box::new(ssource), Box::new(ssink));
        });
        client_end
    }

    fn rpc(end: &mut MsgPipeEnd, tag: Tag, t: &Tmsg) -> Rmsg {
        end.sendmsg(&encode_tmsg(tag, t)).unwrap();
        let raw = end.recvmsg().unwrap().unwrap();
        let (rtag, r) = crate::codec::decode_rmsg(&raw).unwrap();
        assert_eq!(rtag, tag);
        r
    }

    #[test]
    fn attach_walk_read() {
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/greet", b"hello").unwrap();
        let mut c = start_server(fs);
        let r = rpc(
            &mut c,
            1,
            &Tmsg::Attach {
                fid: 0,
                uname: "u".into(),
                aname: "".into(),
                ticket: vec![],
            },
        );
        assert!(matches!(r, Rmsg::Attach { .. }), "got {r:?}");
        let r = rpc(
            &mut c,
            2,
            &Tmsg::Walk {
                fid: 0,
                name: "greet".into(),
            },
        );
        assert!(matches!(r, Rmsg::Walk { .. }), "got {r:?}");
        let r = rpc(&mut c, 3, &Tmsg::Open { fid: 0, mode: 0 });
        assert!(matches!(r, Rmsg::Open { .. }), "got {r:?}");
        let r = rpc(
            &mut c,
            4,
            &Tmsg::Read {
                fid: 0,
                offset: 0,
                count: 100,
            },
        );
        match r {
            Rmsg::Read { data, .. } => assert_eq!(data, b"hello"),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn nine_service_dispatches_inline_without_threads() {
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/greet", b"hello").unwrap();
        let (mut client, server_end) = MsgPipeEnd::pair();
        let (ssink, mut ssource) = server_end.split();
        let svc = NineService::new(fs, Box::new(ssink));
        let mut rpc = |tag: Tag, t: &Tmsg| -> Rmsg {
            client.sendmsg(&encode_tmsg(tag, t)).unwrap();
            let raw = ssource.recvmsg().unwrap().unwrap();
            svc.input(&raw).unwrap();
            let (rtag, r) = crate::codec::decode_rmsg(&client.recvmsg().unwrap().unwrap()).unwrap();
            assert_eq!(rtag, tag);
            r
        };
        let r = rpc(
            1,
            &Tmsg::Attach {
                fid: 0,
                uname: "u".into(),
                aname: "".into(),
                ticket: vec![],
            },
        );
        assert!(matches!(r, Rmsg::Attach { .. }), "got {r:?}");
        let r = rpc(
            2,
            &Tmsg::Walk {
                fid: 0,
                name: "greet".into(),
            },
        );
        assert!(matches!(r, Rmsg::Walk { .. }), "got {r:?}");
        let r = rpc(3, &Tmsg::Open { fid: 0, mode: 0 });
        assert!(matches!(r, Rmsg::Open { .. }), "got {r:?}");
        match rpc(
            4,
            &Tmsg::Read {
                fid: 0,
                offset: 0,
                count: 100,
            },
        ) {
            Rmsg::Read { data, .. } => assert_eq!(data, b"hello"),
            other => panic!("got {other:?}"),
        }
        svc.hangup();
        // Malformed input poisons the link.
        assert!(svc.input(&[0xff, 0xff, 0xff]).is_err());
    }

    #[test]
    fn errors_are_strings() {
        let fs = MemFs::new("ram", "bootes");
        let mut c = start_server(fs);
        rpc(
            &mut c,
            1,
            &Tmsg::Attach {
                fid: 0,
                uname: "u".into(),
                aname: "".into(),
                ticket: vec![],
            },
        );
        let r = rpc(
            &mut c,
            2,
            &Tmsg::Walk {
                fid: 0,
                name: "nope".into(),
            },
        );
        match r {
            Rmsg::Error { ename } => assert_eq!(ename, errstr::ENOTEXIST),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn read_requires_open() {
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/f", b"x").unwrap();
        let mut c = start_server(fs);
        rpc(
            &mut c,
            1,
            &Tmsg::Attach {
                fid: 0,
                uname: "u".into(),
                aname: "".into(),
                ticket: vec![],
            },
        );
        rpc(
            &mut c,
            2,
            &Tmsg::Walk {
                fid: 0,
                name: "f".into(),
            },
        );
        let r = rpc(
            &mut c,
            3,
            &Tmsg::Read {
                fid: 0,
                offset: 0,
                count: 1,
            },
        );
        assert!(matches!(r, Rmsg::Error { .. }));
    }

    #[test]
    fn clwalk_failure_leaves_newfid_unallocated() {
        let fs = MemFs::new("ram", "bootes");
        let mut c = start_server(fs);
        rpc(
            &mut c,
            1,
            &Tmsg::Attach {
                fid: 0,
                uname: "u".into(),
                aname: "".into(),
                ticket: vec![],
            },
        );
        let r = rpc(
            &mut c,
            2,
            &Tmsg::Clwalk {
                fid: 0,
                new_fid: 1,
                name: "missing".into(),
            },
        );
        assert!(matches!(r, Rmsg::Error { .. }));
        // new_fid must now be free for reuse.
        let r = rpc(&mut c, 3, &Tmsg::Clone { fid: 0, new_fid: 1 });
        assert!(matches!(r, Rmsg::Clone { .. }), "got {r:?}");
    }

    #[test]
    fn fid_in_use_rejected() {
        let fs = MemFs::new("ram", "bootes");
        let mut c = start_server(fs);
        rpc(
            &mut c,
            1,
            &Tmsg::Attach {
                fid: 0,
                uname: "u".into(),
                aname: "".into(),
                ticket: vec![],
            },
        );
        let r = rpc(
            &mut c,
            2,
            &Tmsg::Attach {
                fid: 0,
                uname: "u".into(),
                aname: "".into(),
                ticket: vec![],
            },
        );
        assert!(matches!(r, Rmsg::Error { .. }));
    }

    #[test]
    fn session_resets_fids() {
        let fs = MemFs::new("ram", "bootes");
        let mut c = start_server(fs);
        rpc(
            &mut c,
            1,
            &Tmsg::Attach {
                fid: 0,
                uname: "u".into(),
                aname: "".into(),
                ticket: vec![],
            },
        );
        let r = rpc(&mut c, 2, &Tmsg::Session { chal: [0; 8] });
        assert!(matches!(r, Rmsg::Session { .. }));
        // Fid 0 is gone after session.
        let r = rpc(&mut c, 3, &Tmsg::Clunk { fid: 0 });
        assert!(matches!(r, Rmsg::Error { .. }));
    }
}
