//! A tag-multiplexed concurrent 9P client.
//!
//! Many processes share one connection to a file server; the mount driver
//! "demultiplexes among processes using the file server" (§2.1). The
//! client assigns each outstanding request a distinct tag, a demux thread
//! routes replies back by tag, and any number of threads may issue RPCs
//! concurrently.

use crate::codec::{decode_rmsg, encode_tmsg};
use crate::fcall::{Fid, Rmsg, Tag, Tmsg, CHAL_LEN, MAX_FDATA, NOTAG};
use crate::procfs::OpenMode;
use crate::qid::Qid;
use crate::transport::{MsgSink, MsgSource};
use crate::{errstr, Dir, NineError, Result};
use plan9_netlog::trace;
use plan9_netlog::{Counter, Facility, Histogram};
use plan9_support::chan::{bounded, Sender};
use plan9_support::sync::Mutex;
use plan9_support::{time, vtime};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU16, Ordering};
use std::sync::Arc;

struct ClientShared {
    pending: Mutex<HashMap<Tag, Sender<Rmsg>>>,
    sink: Mutex<Box<dyn MsgSink>>,
    next_tag: AtomicU16,
    next_fid: AtomicU16,
    hungup: AtomicBool,
    /// Completed RPC round trips.
    rpcs: Counter,
    /// Round-trip latency, send to matched reply.
    rpc_time: Histogram,
}

/// A 9P RPC client over a delimited transport.
///
/// Cloneable (`Arc` semantics): clones share the connection, tags and fid
/// space.
#[derive(Clone)]
pub struct NineClient {
    shared: Arc<ClientShared>,
}

impl NineClient {
    /// Creates a client over the given transport halves and starts the
    /// reply-demultiplexing thread.
    pub fn new(sink: Box<dyn MsgSink>, mut source: Box<dyn MsgSource>) -> NineClient {
        let shared = Arc::new(ClientShared {
            pending: Mutex::named(HashMap::new(), "ninep.client.pending"),
            sink: Mutex::named(sink, "ninep.client.sink"),
            next_tag: AtomicU16::new(0),
            next_fid: AtomicU16::new(0),
            hungup: AtomicBool::new(false),
            rpcs: Counter::new("9p.rpc"),
            rpc_time: Histogram::new("9p.rpctime"),
        });
        let demux = Arc::clone(&shared);
        vtime::kproc("9p-demux", move || loop {
            match source.recvmsg() {
                Ok(Some(raw)) => {
                    if let Ok((tag, r)) = decode_rmsg(&raw) {
                        if let Some(tx) = demux.pending.lock().remove(&tag) {
                            let _ = tx.send(r);
                        }
                        // Replies to flushed/unknown tags are dropped.
                    }
                }
                Ok(None) | Err(_) => {
                    demux.hungup.store(true, Ordering::SeqCst);
                    // Fail every outstanding request.
                    let pending: Vec<Sender<Rmsg>> =
                        demux.pending.lock().drain().map(|(_, tx)| tx).collect();
                    for tx in pending {
                        let _ = tx.send(Rmsg::Error {
                            ename: errstr::EHUNGUP.to_string(),
                        });
                    }
                    return;
                }
            }
        })
        // checked: spawn fails only on OS thread exhaustion at mount time
        .expect("spawn 9p demux");
        NineClient { shared }
    }

    /// Reports whether the connection has hung up.
    pub fn hungup(&self) -> bool {
        self.shared.hungup.load(Ordering::SeqCst)
    }

    /// Completed RPC round trips on this connection.
    pub fn rpc_count(&self) -> u64 {
        self.shared.rpcs.get()
    }

    /// Renders the RPC counter and latency histogram as `key: value`
    /// lines for a `stats` file.
    pub fn stats_text(&self) -> String {
        let mut s = format!("rpc: {}\n", self.shared.rpcs.get());
        s.push_str(&self.shared.rpc_time.render());
        s
    }

    /// Allocates a fresh fid. The caller owns it until clunked.
    pub fn alloc_fid(&self) -> Fid {
        loop {
            let f = self.shared.next_fid.fetch_add(1, Ordering::Relaxed);
            if f != crate::fcall::NOFID {
                return f;
            }
        }
    }

    fn alloc_tag(&self) -> Tag {
        loop {
            let t = self.shared.next_tag.fetch_add(1, Ordering::Relaxed);
            if t != NOTAG {
                return t;
            }
        }
    }

    /// Performs one RPC: sends the T-message, blocks for the R-message.
    ///
    /// An `Rerror` reply is surfaced as `Err` with the server's string.
    ///
    /// When nettrace is on, the RPC opens a root span keyed by its tag;
    /// three children partition it — `marshal` (packing the T-message),
    /// `txwait` (the transmit path down to the wire, which runs on this
    /// thread), `reply` (waiting for the R-message) — and the handle is
    /// installed as the thread's current trace so the layers underneath
    /// attribute their own spans to this RPC.
    pub fn rpc(&self, t: &Tmsg) -> Result<Rmsg> {
        if self.hungup() {
            return Err(NineError::new(errstr::EHUNGUP));
        }
        let tag = self.alloc_tag();
        let tracer = trace::global();
        let root = if tracer.enabled() {
            tracer.begin(&format!("{:?} tag {tag}", t.msg_type()))
        } else {
            None
        };
        let _cur = root.as_ref().map(|h| h.set_current());
        // The three child spans share their boundary timestamps so they
        // tile the root: nothing the RPC waits on falls in a gap.
        let m0 = time::now();
        let (tx, rx) = bounded(1);
        self.shared.pending.lock().insert(tag, tx);
        let buf = encode_tmsg(tag, t);
        let started = time::now();
        if let Some(h) = &root {
            h.span(Facility::NineP, "marshal", m0, started);
        }
        // Bind the send result first: an `if let` on the guard-chained
        // call keeps the sink locked through the whole error arm, and
        // the pending cleanup below must not run with sink held.
        let sent = self.shared.sink.lock().sendmsg(&buf);
        if let Err(e) = sent {
            self.shared.pending.lock().remove(&tag);
            if let Some(h) = &root {
                h.finish();
            }
            return Err(e);
        }
        let r0 = time::now();
        if let Some(h) = &root {
            h.span(Facility::NineP, "txwait", started, r0);
        }
        let r = rx.recv();
        if let Some(h) = &root {
            let t_end = time::now();
            h.span(Facility::NineP, "reply", r0, t_end);
            h.finish_at(t_end);
        }
        let r = r.map_err(|_| NineError::new(errstr::EHUNGUP))?;
        self.shared.rpcs.inc();
        self.shared.rpc_time.record(time::now().saturating_duration_since(started));
        match r {
            Rmsg::Error { ename } => Err(NineError(ename)),
            ok if ok.answers(t) => Ok(ok),
            _ => Err(NineError::new(errstr::EBADMSG)),
        }
    }

    /// Aborts the outstanding request with `old_tag`: sends `Tflush`,
    /// and once the server acknowledges, fails the aborted caller with
    /// [`errstr::EFLUSHED`] — the flushed request will never be answered
    /// (§ Tflush semantics).
    pub fn flush(&self, old_tag: Tag) -> Result<()> {
        self.rpc(&Tmsg::Flush { old_tag })?;
        if let Some(tx) = self.shared.pending.lock().remove(&old_tag) {
            let _ = tx.send(Rmsg::Error {
                ename: errstr::EFLUSHED.to_string(),
            });
        }
        Ok(())
    }

    /// The tag most recently allocated minus pending bookkeeping is not
    /// exposed; callers that need to flush use [`NineClient::rpc_tagged`]
    /// to learn the tag up front.
    pub fn rpc_tagged(&self, t: &Tmsg) -> (Tag, plan9_support::chan::Receiver<Rmsg>) {
        let tag = self.alloc_tag();
        let (tx, rx) = bounded(1);
        self.shared.pending.lock().insert(tag, tx);
        let buf = encode_tmsg(tag, t);
        let sent = self.shared.sink.lock().sendmsg(&buf);
        if sent.is_err() {
            self.shared.pending.lock().remove(&tag);
            let (etx, erx) = bounded(1);
            let _ = etx.send(Rmsg::Error {
                ename: errstr::EHUNGUP.to_string(),
            });
            return (tag, erx);
        }
        (tag, rx)
    }

    /// Starts a session, resetting the fid space.
    pub fn session(&self) -> Result<(String, String)> {
        match self.rpc(&Tmsg::Session {
            chal: [0u8; CHAL_LEN],
        })? {
            Rmsg::Session {
                authid, authdom, ..
            } => Ok((authid, authdom)),
            _ => Err(NineError::new(errstr::EBADMSG)),
        }
    }

    /// Attaches a new fid to the server root.
    pub fn attach(&self, uname: &str, aname: &str) -> Result<(Fid, Qid)> {
        let fid = self.alloc_fid();
        match self.rpc(&Tmsg::Attach {
            fid,
            uname: uname.to_string(),
            aname: aname.to_string(),
            ticket: Vec::new(),
        })? {
            Rmsg::Attach { qid, .. } => Ok((fid, qid)),
            _ => Err(NineError::new(errstr::EBADMSG)),
        }
    }

    /// Clones `fid` into a freshly allocated fid.
    pub fn clone_fid(&self, fid: Fid) -> Result<Fid> {
        let new_fid = self.alloc_fid();
        self.rpc(&Tmsg::Clone { fid, new_fid })?;
        Ok(new_fid)
    }

    /// Walks `fid` one level to `name`.
    pub fn walk(&self, fid: Fid, name: &str) -> Result<Qid> {
        match self.rpc(&Tmsg::Walk {
            fid,
            name: name.to_string(),
        })? {
            Rmsg::Walk { qid, .. } => Ok(qid),
            _ => Err(NineError::new(errstr::EBADMSG)),
        }
    }

    /// Clone-and-walk in one round trip.
    pub fn clwalk(&self, fid: Fid, name: &str) -> Result<(Fid, Qid)> {
        let new_fid = self.alloc_fid();
        match self.rpc(&Tmsg::Clwalk {
            fid,
            new_fid,
            name: name.to_string(),
        })? {
            Rmsg::Clwalk { qid, .. } => Ok((new_fid, qid)),
            _ => Err(NineError::new(errstr::EBADMSG)),
        }
    }

    /// Opens `fid` for I/O.
    pub fn open(&self, fid: Fid, mode: OpenMode) -> Result<Qid> {
        match self.rpc(&Tmsg::Open { fid, mode: mode.0 })? {
            Rmsg::Open { qid, .. } => Ok(qid),
            _ => Err(NineError::new(errstr::EBADMSG)),
        }
    }

    /// Creates and opens `name` in the directory `fid` references.
    pub fn create(&self, fid: Fid, name: &str, perm: u32, mode: OpenMode) -> Result<Qid> {
        match self.rpc(&Tmsg::Create {
            fid,
            name: name.to_string(),
            perm,
            mode: mode.0,
        })? {
            Rmsg::Create { qid, .. } => Ok(qid),
            _ => Err(NineError::new(errstr::EBADMSG)),
        }
    }

    /// Reads up to `count` bytes at `offset`.
    pub fn read(&self, fid: Fid, offset: u64, count: usize) -> Result<Vec<u8>> {
        let count = count.min(MAX_FDATA) as u16;
        match self.rpc(&Tmsg::Read { fid, offset, count })? {
            Rmsg::Read { data, .. } => Ok(data),
            _ => Err(NineError::new(errstr::EBADMSG)),
        }
    }

    /// Writes bytes at `offset`, splitting into `MAX_FDATA` pieces as
    /// needed, and returns the number of bytes written.
    pub fn write(&self, fid: Fid, offset: u64, data: &[u8]) -> Result<usize> {
        let mut written = 0usize;
        // 9P read/write messages carry at most MAX_FDATA bytes each.
        for chunk in data.chunks(MAX_FDATA) {
            match self.rpc(&Tmsg::Write {
                fid,
                offset: offset + written as u64,
                data: chunk.to_vec(),
            })? {
                Rmsg::Write { count, .. } => {
                    written += count as usize;
                    if (count as usize) < chunk.len() {
                        break;
                    }
                }
                _ => return Err(NineError::new(errstr::EBADMSG)),
            }
        }
        Ok(written)
    }

    /// Discards `fid`.
    pub fn clunk(&self, fid: Fid) -> Result<()> {
        self.rpc(&Tmsg::Clunk { fid }).map(|_| ())
    }

    /// Removes the file and discards `fid`.
    pub fn remove(&self, fid: Fid) -> Result<()> {
        self.rpc(&Tmsg::Remove { fid }).map(|_| ())
    }

    /// Reads the file's attributes.
    pub fn stat(&self, fid: Fid) -> Result<Dir> {
        match self.rpc(&Tmsg::Stat { fid })? {
            Rmsg::Stat { stat, .. } => Ok(stat),
            _ => Err(NineError::new(errstr::EBADMSG)),
        }
    }

    /// Writes the file's attributes.
    pub fn wstat(&self, fid: Fid, d: &Dir) -> Result<()> {
        self.rpc(&Tmsg::Wstat {
            fid,
            stat: d.clone(),
        })
        .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procfs::MemFs;
    use crate::server::serve;
    use crate::transport::MsgPipeEnd;
    use std::sync::Arc;

    fn client_for(fs: Arc<MemFs>) -> NineClient {
        let (client_end, server_end) = MsgPipeEnd::pair();
        let (ssink, ssource) = server_end.split();
        std::thread::spawn(move || {
            let _ = serve(fs, Box::new(ssource), Box::new(ssink));
        });
        let (csink, csource) = client_end.split();
        NineClient::new(Box::new(csink), Box::new(csource))
    }

    #[test]
    fn full_file_round_trip() {
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/dir/file", b"0123456789").unwrap();
        let c = client_for(fs);
        let (fid, root_qid) = c.attach("u", "").unwrap();
        assert!(root_qid.is_dir());
        c.walk(fid, "dir").unwrap();
        let q = c.walk(fid, "file").unwrap();
        assert!(!q.is_dir());
        c.open(fid, OpenMode::READ).unwrap();
        assert_eq!(c.read(fid, 2, 4).unwrap(), b"2345");
        c.clunk(fid).unwrap();
    }

    #[test]
    fn large_write_is_chunked() {
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/big", b"").unwrap();
        let c = client_for(fs.clone());
        let (fid, _) = c.attach("u", "").unwrap();
        c.walk(fid, "big").unwrap();
        c.open(fid, OpenMode::WRITE).unwrap();
        let payload: Vec<u8> = (0..MAX_FDATA * 3 + 17).map(|i| i as u8).collect();
        assert_eq!(c.write(fid, 0, &payload).unwrap(), payload.len());
        // Verify through a fresh read fid.
        let (fid2, _) = c.attach("u", "").unwrap();
        c.walk(fid2, "big").unwrap();
        c.open(fid2, OpenMode::READ).unwrap();
        let mut got = Vec::new();
        loop {
            let chunk = c.read(fid2, got.len() as u64, MAX_FDATA).unwrap();
            if chunk.is_empty() {
                break;
            }
            got.extend_from_slice(&chunk);
        }
        assert_eq!(got, payload);
    }

    #[test]
    fn concurrent_rpcs_from_many_threads() {
        let fs = MemFs::new("ram", "bootes");
        for i in 0..8 {
            fs.put_file(&format!("/f{i}"), format!("data{i}").as_bytes())
                .unwrap();
        }
        let c = client_for(fs);
        let mut handles = Vec::new();
        for i in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let (fid, _) = c.attach("u", "").unwrap();
                    c.walk(fid, &format!("f{i}")).unwrap();
                    c.open(fid, OpenMode::READ).unwrap();
                    let data = c.read(fid, 0, 64).unwrap();
                    assert_eq!(data, format!("data{i}").as_bytes());
                    c.clunk(fid).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn server_error_string_propagates() {
        let fs = MemFs::new("ram", "bootes");
        let c = client_for(fs);
        let (fid, _) = c.attach("u", "").unwrap();
        let err = c.walk(fid, "missing").unwrap_err();
        assert_eq!(err.0, errstr::ENOTEXIST);
    }

    #[test]
    fn flush_releases_a_blocked_request() {
        // A server that never answers reads: a MemFs wrapped so Tread
        // blocks forever. Simpler: use rpc_tagged against a tag that the
        // server will answer, flush it first, and observe EFLUSHED.
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/slow", b"data").unwrap();
        let c = client_for(fs);
        let (fid, _) = c.attach("u", "").unwrap();
        // Issue a request the server will answer, but race the flush:
        // after the flush completes, the pending rpc is failed locally
        // even if the reply was dropped server-side.
        let (tag, rx) = c.rpc_tagged(&Tmsg::Walk {
            fid,
            name: "slow".into(),
        });
        c.flush(tag).unwrap();
        let r = rx.recv().unwrap();
        match r {
            // Either the real reply won the race or the flush failed it.
            Rmsg::Error { ename } => assert_eq!(ename, errstr::EFLUSHED),
            Rmsg::Walk { .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn hangup_fails_rpcs() {
        let (client_end, server_end) = MsgPipeEnd::pair();
        let (csink, csource) = client_end.split();
        let c = NineClient::new(Box::new(csink), Box::new(csource));
        drop(server_end);
        let err = c.attach("u", "").unwrap_err();
        assert_eq!(err.0, errstr::EHUNGUP);
    }
}
