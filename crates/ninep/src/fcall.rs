//! The 17 message types of 1st-edition 9P.
//!
//! The paper (§2.1): "The protocol consists of 17 messages describing
//! operations on files and directories." The set, following the Plan 9
//! 1st edition `fcall.h`, is:
//!
//! | # | message | purpose |
//! |---|---------|---------|
//! | 1 | `nop` | no-op; historically used to synchronize a link |
//! | 2 | `osession` | obsolete session setup (always answered with an error) |
//! | 3 | `session` | authenticate a connection and reset fid space |
//! | 4 | `error` | reply-only: the request failed, here is why |
//! | 5 | `flush` | abort an outstanding request |
//! | 6 | `attach` | validate a user, return a channel to the server root |
//! | 7 | `clone` | duplicate a channel, like `dup` |
//! | 8 | `walk` | descend one level in the hierarchy |
//! | 9 | `clwalk` | clone-and-walk in one round trip (an optimization) |
//! | 10 | `open` | prepare a channel for I/O |
//! | 11 | `create` | create a file and open it |
//! | 12 | `read` | read from an open channel |
//! | 13 | `write` | write to an open channel |
//! | 14 | `clunk` | discard a channel without affecting the file |
//! | 15 | `remove` | remove the file and clunk the channel |
//! | 16 | `stat` | read file attributes |
//! | 17 | `wstat` | write file attributes |

use crate::dir::Dir;
use crate::qid::Qid;

/// Fixed length of name fields (file names, user names) on the wire.
///
/// 1st-edition 9P uses fixed-size, NUL-padded name fields of 28 bytes.
pub const NAME_LEN: usize = 28;

/// Fixed length of the error string in an `Rerror`.
pub const ERR_LEN: usize = 64;

/// Fixed length of an authentication ticket in `Tattach`.
pub const TICKET_LEN: usize = 72;

/// Fixed length of an authenticator/challenge.
pub const AUTH_LEN: usize = 13;

/// Fixed length of a challenge in `Tsession`/`Rsession`.
pub const CHAL_LEN: usize = 8;

/// Fixed length of the authentication domain name in `Rsession`.
pub const DOMAIN_LEN: usize = 48;

/// Maximum data bytes carried by one `read`/`write` message.
pub const MAX_FDATA: usize = 8192;

/// Maximum total message size on the wire (header + data).
///
/// Headers never exceed 160 bytes in this dialect, so `MAX_MSG` bounds
/// buffer allocation for transports.
pub const MAX_MSG: usize = 160 + MAX_FDATA;

/// A fid: the client's handle on a file, scoped to one connection.
pub type Fid = u16;

/// A tag: identifies one outstanding request on a connection.
pub type Tag = u16;

/// The tag value that means "no tag" (used by `Tnop`).
pub const NOTAG: Tag = 0xffff;

/// The fid value that means "no fid".
pub const NOFID: Fid = 0xffff;

/// Message type bytes on the wire, matching the 1st-edition layout of
/// consecutive T/R pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Tnop request.
    Tnop = 50,
    /// Rnop reply.
    Rnop = 51,
    /// Tosession request (obsolete).
    Tosession = 52,
    /// Rosession reply (obsolete).
    Rosession = 53,
    /// Terror is illegal; the value is reserved.
    Terror = 54,
    /// Rerror reply.
    Rerror = 55,
    /// Tflush request.
    Tflush = 56,
    /// Rflush reply.
    Rflush = 57,
    /// Tclone request.
    Tclone = 58,
    /// Rclone reply.
    Rclone = 59,
    /// Twalk request.
    Twalk = 60,
    /// Rwalk reply.
    Rwalk = 61,
    /// Topen request.
    Topen = 62,
    /// Ropen reply.
    Ropen = 63,
    /// Tcreate request.
    Tcreate = 64,
    /// Rcreate reply.
    Rcreate = 65,
    /// Tread request.
    Tread = 66,
    /// Rread reply.
    Rread = 67,
    /// Twrite request.
    Twrite = 68,
    /// Rwrite reply.
    Rwrite = 69,
    /// Tclunk request.
    Tclunk = 70,
    /// Rclunk reply.
    Rclunk = 71,
    /// Tremove request.
    Tremove = 72,
    /// Rremove reply.
    Rremove = 73,
    /// Tstat request.
    Tstat = 74,
    /// Rstat reply.
    Rstat = 75,
    /// Twstat request.
    Twstat = 76,
    /// Rwstat reply.
    Rwstat = 77,
    /// Tclwalk request.
    Tclwalk = 78,
    /// Rclwalk reply.
    Rclwalk = 79,
    /// Tsession request.
    Tsession = 84,
    /// Rsession reply.
    Rsession = 85,
    /// Tattach request.
    Tattach = 86,
    /// Rattach reply.
    Rattach = 87,
}

impl MsgType {
    /// Decodes a wire byte into a message type.
    pub fn from_u8(b: u8) -> Option<MsgType> {
        use MsgType::*;
        Some(match b {
            50 => Tnop,
            51 => Rnop,
            52 => Tosession,
            53 => Rosession,
            54 => Terror,
            55 => Rerror,
            56 => Tflush,
            57 => Rflush,
            58 => Tclone,
            59 => Rclone,
            60 => Twalk,
            61 => Rwalk,
            62 => Topen,
            63 => Ropen,
            64 => Tcreate,
            65 => Rcreate,
            66 => Tread,
            67 => Rread,
            68 => Twrite,
            69 => Rwrite,
            70 => Tclunk,
            71 => Rclunk,
            72 => Tremove,
            73 => Rremove,
            74 => Tstat,
            75 => Rstat,
            76 => Twstat,
            77 => Rwstat,
            78 => Tclwalk,
            79 => Rclwalk,
            84 => Tsession,
            85 => Rsession,
            86 => Tattach,
            87 => Rattach,
            _ => return None,
        })
    }
}

/// The number of distinct protocol messages (the paper's "17 messages").
pub const MESSAGE_COUNT: usize = 17;

/// The names of the 17 messages, for documentation and the §2.1 check.
pub const MESSAGE_NAMES: [&str; MESSAGE_COUNT] = [
    "nop", "osession", "session", "error", "flush", "attach", "clone", "walk", "clwalk", "open",
    "create", "read", "write", "clunk", "remove", "stat", "wstat",
];

/// A request (T-message) from client to server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tmsg {
    /// Synchronize the link; carries no state.
    Nop,
    /// Obsolete session setup; servers answer with `Rerror`.
    Osession {
        /// Historical challenge bytes.
        chal: [u8; CHAL_LEN],
    },
    /// Begin a session: abandon all fids, exchange challenges.
    Session {
        /// Client's authentication challenge.
        chal: [u8; CHAL_LEN],
    },
    /// Abort the outstanding request with tag `old_tag`.
    Flush {
        /// Tag of the request to abort.
        old_tag: Tag,
    },
    /// Attach `fid` to the root of the server's tree for user `uname`.
    Attach {
        /// The fid that will reference the root.
        fid: Fid,
        /// The user making the attach.
        uname: String,
        /// Which tree to attach to (servers may export several).
        aname: String,
        /// Authentication ticket (opaque here; checked by auth servers).
        ticket: Vec<u8>,
    },
    /// Make `new_fid` identical to `fid`.
    Clone {
        /// Existing fid.
        fid: Fid,
        /// New fid to establish.
        new_fid: Fid,
    },
    /// Move `fid` one level down the hierarchy to `name`.
    Walk {
        /// The fid to move.
        fid: Fid,
        /// The path element to walk to.
        name: String,
    },
    /// Clone `fid` to `new_fid` and walk it to `name`, in one round trip.
    Clwalk {
        /// Existing fid.
        fid: Fid,
        /// New fid, which ends at `name` on success.
        new_fid: Fid,
        /// The path element to walk to.
        name: String,
    },
    /// Prepare `fid` for I/O.
    Open {
        /// The fid to open.
        fid: Fid,
        /// Open mode (OREAD and friends; see [`crate::procfs::OpenMode`]).
        mode: u8,
    },
    /// Create `name` in the directory referenced by `fid`, then open it.
    Create {
        /// Directory fid; becomes the new file on success.
        fid: Fid,
        /// Name of the file to create.
        name: String,
        /// Permissions of the new file ([`crate::procfs::Perm`]).
        perm: u32,
        /// Open mode.
        mode: u8,
    },
    /// Read `count` bytes at `offset` from the open file `fid`.
    Read {
        /// Open fid.
        fid: Fid,
        /// Byte offset.
        offset: u64,
        /// Number of bytes requested (at most [`MAX_FDATA`]).
        count: u16,
    },
    /// Write bytes at `offset` to the open file `fid`.
    Write {
        /// Open fid.
        fid: Fid,
        /// Byte offset.
        offset: u64,
        /// The data to write (at most [`MAX_FDATA`] bytes).
        data: Vec<u8>,
    },
    /// Discard `fid` without affecting the file.
    Clunk {
        /// The fid to discard.
        fid: Fid,
    },
    /// Remove the file and discard `fid`.
    Remove {
        /// The fid whose file is removed.
        fid: Fid,
    },
    /// Read the attributes of the file referenced by `fid`.
    Stat {
        /// The fid to stat.
        fid: Fid,
    },
    /// Write the attributes of the file referenced by `fid`.
    Wstat {
        /// The fid to wstat.
        fid: Fid,
        /// The new directory entry.
        stat: Dir,
    },
}

impl Tmsg {
    /// The wire type byte for this request.
    pub fn msg_type(&self) -> MsgType {
        match self {
            Tmsg::Nop => MsgType::Tnop,
            Tmsg::Osession { .. } => MsgType::Tosession,
            Tmsg::Session { .. } => MsgType::Tsession,
            Tmsg::Flush { .. } => MsgType::Tflush,
            Tmsg::Attach { .. } => MsgType::Tattach,
            Tmsg::Clone { .. } => MsgType::Tclone,
            Tmsg::Walk { .. } => MsgType::Twalk,
            Tmsg::Clwalk { .. } => MsgType::Tclwalk,
            Tmsg::Open { .. } => MsgType::Topen,
            Tmsg::Create { .. } => MsgType::Tcreate,
            Tmsg::Read { .. } => MsgType::Tread,
            Tmsg::Write { .. } => MsgType::Twrite,
            Tmsg::Clunk { .. } => MsgType::Tclunk,
            Tmsg::Remove { .. } => MsgType::Tremove,
            Tmsg::Stat { .. } => MsgType::Tstat,
            Tmsg::Wstat { .. } => MsgType::Twstat,
        }
    }

    /// The fid this request operates on, if any (used by servers to
    /// serialize per-fid operations).
    pub fn fid(&self) -> Option<Fid> {
        match self {
            Tmsg::Attach { fid, .. }
            | Tmsg::Clone { fid, .. }
            | Tmsg::Walk { fid, .. }
            | Tmsg::Clwalk { fid, .. }
            | Tmsg::Open { fid, .. }
            | Tmsg::Create { fid, .. }
            | Tmsg::Read { fid, .. }
            | Tmsg::Write { fid, .. }
            | Tmsg::Clunk { fid }
            | Tmsg::Remove { fid }
            | Tmsg::Stat { fid }
            | Tmsg::Wstat { fid, .. } => Some(*fid),
            _ => None,
        }
    }
}

/// A reply (R-message) from server to client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rmsg {
    /// Reply to `Tnop`.
    Nop,
    /// Reply to `Tosession` (never sent by this implementation; kept for
    /// wire compatibility).
    Osession,
    /// Reply to `Tsession`: the server's challenge and auth identity.
    Session {
        /// Server's challenge.
        chal: [u8; CHAL_LEN],
        /// Server's authentication id.
        authid: String,
        /// Server's authentication domain.
        authdom: String,
    },
    /// The request identified by the tag failed.
    Error {
        /// Why, as a string — the only error representation in 9P.
        ename: String,
    },
    /// Reply to `Tflush`: the old request has been aborted or had finished.
    Flush,
    /// Reply to `Tattach`.
    Attach {
        /// Echo of the request fid.
        fid: Fid,
        /// Qid of the server root.
        qid: Qid,
    },
    /// Reply to `Tclone`.
    Clone {
        /// Echo of the request fid.
        fid: Fid,
    },
    /// Reply to `Twalk`.
    Walk {
        /// Echo of the request fid.
        fid: Fid,
        /// Qid of the file walked to.
        qid: Qid,
    },
    /// Reply to `Tclwalk`.
    Clwalk {
        /// Echo of the request fid.
        fid: Fid,
        /// Qid of the file walked to.
        qid: Qid,
    },
    /// Reply to `Topen`.
    Open {
        /// Echo of the request fid.
        fid: Fid,
        /// Qid of the opened file.
        qid: Qid,
    },
    /// Reply to `Tcreate`.
    Create {
        /// Echo of the request fid.
        fid: Fid,
        /// Qid of the created file.
        qid: Qid,
    },
    /// Reply to `Tread`.
    Read {
        /// Echo of the request fid.
        fid: Fid,
        /// The bytes read.
        data: Vec<u8>,
    },
    /// Reply to `Twrite`.
    Write {
        /// Echo of the request fid.
        fid: Fid,
        /// Number of bytes accepted.
        count: u16,
    },
    /// Reply to `Tclunk`.
    Clunk {
        /// Echo of the request fid.
        fid: Fid,
    },
    /// Reply to `Tremove`.
    Remove {
        /// Echo of the request fid.
        fid: Fid,
    },
    /// Reply to `Tstat`.
    Stat {
        /// Echo of the request fid.
        fid: Fid,
        /// The directory entry.
        stat: Dir,
    },
    /// Reply to `Twstat`.
    Wstat {
        /// Echo of the request fid.
        fid: Fid,
    },
}

impl Rmsg {
    /// The wire type byte for this reply.
    pub fn msg_type(&self) -> MsgType {
        match self {
            Rmsg::Nop => MsgType::Rnop,
            Rmsg::Osession => MsgType::Rosession,
            Rmsg::Session { .. } => MsgType::Rsession,
            Rmsg::Error { .. } => MsgType::Rerror,
            Rmsg::Flush => MsgType::Rflush,
            Rmsg::Attach { .. } => MsgType::Rattach,
            Rmsg::Clone { .. } => MsgType::Rclone,
            Rmsg::Walk { .. } => MsgType::Rwalk,
            Rmsg::Clwalk { .. } => MsgType::Rclwalk,
            Rmsg::Open { .. } => MsgType::Ropen,
            Rmsg::Create { .. } => MsgType::Rcreate,
            Rmsg::Read { .. } => MsgType::Rread,
            Rmsg::Write { .. } => MsgType::Rwrite,
            Rmsg::Clunk { .. } => MsgType::Rclunk,
            Rmsg::Remove { .. } => MsgType::Rremove,
            Rmsg::Stat { .. } => MsgType::Rstat,
            Rmsg::Wstat { .. } => MsgType::Rwstat,
        }
    }

    /// Reports whether this reply is the expected kind for the request.
    pub fn answers(&self, t: &Tmsg) -> bool {
        if matches!(self, Rmsg::Error { .. }) {
            return true;
        }
        (self.msg_type() as u8) == (t.msg_type() as u8) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_messages() {
        assert_eq!(MESSAGE_COUNT, 17);
        assert_eq!(MESSAGE_NAMES.len(), 17);
        // All names distinct.
        let mut names = MESSAGE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn msg_type_round_trip() {
        for b in 0..=255u8 {
            if let Some(t) = MsgType::from_u8(b) {
                assert_eq!(t as u8, b);
            }
        }
    }

    #[test]
    fn replies_answer_requests() {
        let t = Tmsg::Clunk { fid: 3 };
        assert!(Rmsg::Clunk { fid: 3 }.answers(&t));
        assert!(Rmsg::Error { ename: "x".into() }.answers(&t));
        assert!(!Rmsg::Nop.answers(&t));
    }

    #[test]
    fn fid_extraction() {
        assert_eq!(Tmsg::Clunk { fid: 7 }.fid(), Some(7));
        assert_eq!(Tmsg::Nop.fid(), None);
        assert_eq!(Tmsg::Flush { old_tag: 1 }.fid(), None);
    }
}
