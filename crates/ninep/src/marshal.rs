//! Marshaling 9P messages over undelimited byte streams.
//!
//! The paper (§2.1): "When a protocol does not meet these requirements
//! (for example, TCP does not preserve delimiters) we provide mechanisms
//! to marshal messages before handing them to the system."
//!
//! The mechanism here is a four-byte little-endian length prefix. A
//! [`FramedSink`] prepends it, and a [`FramedSource`] buffers arbitrary
//! chunks from the stream and re-emits whole messages.

use crate::transport::{ByteSink, ByteSource, MsgSink, MsgSource};
use crate::{errstr, NineError, Result};

/// The size of the length prefix.
pub const FRAME_HDR: usize = 4;

/// Upper bound accepted for a framed message, as a sanity check against
/// stream desynchronization.
pub const FRAME_MAX: usize = 1 << 20;

/// Adapts a byte sink into a message sink by prefixing each message with
/// its length.
pub struct FramedSink<W: ByteSink> {
    inner: W,
}

impl<W: ByteSink> FramedSink<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> Self {
        FramedSink { inner }
    }

    /// Returns the wrapped sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: ByteSink> MsgSink for FramedSink<W> {
    fn sendmsg(&mut self, msg: &[u8]) -> Result<()> {
        if msg.len() > FRAME_MAX {
            return Err(NineError::new(errstr::ETOOBIG));
        }
        // One contiguous write: a write of less than 32K is atomic on a
        // Plan 9 stream, and our simulated streams honor the same rule, so
        // header and body stay adjacent even with concurrent writers.
        let mut buf = Vec::with_capacity(FRAME_HDR + msg.len());
        buf.extend_from_slice(&(msg.len() as u32).to_le_bytes());
        buf.extend_from_slice(msg);
        self.inner.send_bytes(&buf)
    }
}

/// Adapts a byte source into a message source by reassembling
/// length-prefixed frames from arbitrarily-chunked input.
pub struct FramedSource<R: ByteSource> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: ByteSource> FramedSource<R> {
    /// Wraps a byte source.
    pub fn new(inner: R) -> Self {
        FramedSource {
            inner,
            buf: Vec::new(),
        }
    }

    /// Bytes currently buffered but not yet returned.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

impl<R: ByteSource> MsgSource for FramedSource<R> {
    fn recvmsg(&mut self) -> Result<Option<Vec<u8>>> {
        loop {
            if let Some(&hdr) = self.buf.first_chunk::<FRAME_HDR>() {
                let need = u32::from_le_bytes(hdr) as usize;
                if need > FRAME_MAX {
                    return Err(NineError::new(errstr::EBADMSG));
                }
                if self.buf.len() >= FRAME_HDR + need {
                    let msg = self.buf[FRAME_HDR..FRAME_HDR + need].to_vec();
                    self.buf.drain(..FRAME_HDR + need);
                    return Ok(Some(msg));
                }
            }
            match self.inner.recv_some()? {
                Some(chunk) => self.buf.extend_from_slice(&chunk),
                None => {
                    if self.buf.is_empty() {
                        return Ok(None);
                    }
                    // EOF mid-frame: the peer died; report it.
                    return Err(NineError::new(errstr::EHUNGUP));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::BytePipeEnd;

    #[test]
    fn frames_survive_rechunking() {
        let (a, mut b) = BytePipeEnd::pair();
        b.max_chunk = 3;
        let mut tx = FramedSink::new(a);
        let mut rx = FramedSource::new(b);
        tx.sendmsg(b"hello world").unwrap();
        tx.sendmsg(b"").unwrap();
        tx.sendmsg(&[7u8; 1000]).unwrap();
        assert_eq!(rx.recvmsg().unwrap().unwrap(), b"hello world");
        assert_eq!(rx.recvmsg().unwrap().unwrap(), b"");
        assert_eq!(rx.recvmsg().unwrap().unwrap(), vec![7u8; 1000]);
    }

    #[test]
    fn eof_between_frames_is_clean() {
        let (a, b) = BytePipeEnd::pair();
        let mut tx = FramedSink::new(a);
        let mut rx = FramedSource::new(b);
        tx.sendmsg(b"x").unwrap();
        drop(tx);
        assert_eq!(rx.recvmsg().unwrap().unwrap(), b"x");
        assert_eq!(rx.recvmsg().unwrap(), None);
    }

    #[test]
    fn eof_mid_frame_is_error() {
        let (mut a, b) = BytePipeEnd::pair();
        let mut rx = FramedSource::new(b);
        // Header promises 10 bytes but only 2 arrive.
        a.send_bytes(&10u32.to_le_bytes()).unwrap();
        a.send_bytes(b"ab").unwrap();
        drop(a);
        assert!(rx.recvmsg().is_err());
    }

    #[test]
    fn absurd_length_is_error() {
        let (mut a, b) = BytePipeEnd::pair();
        let mut rx = FramedSource::new(b);
        a.send_bytes(&u32::MAX.to_le_bytes()).unwrap();
        assert!(rx.recvmsg().is_err());
    }

    plan9_support::props! {
        fn prop_round_trip_any_messages_any_chunking(g, cases = 256) {
            let msgs = g.vec(1..20, |g| g.bytes(0..300));
            let chunk = g.usize_in(1..17);
            let (a, mut b) = BytePipeEnd::pair();
            b.max_chunk = chunk;
            let mut tx = FramedSink::new(a);
            let mut rx = FramedSource::new(b);
            for m in &msgs {
                tx.sendmsg(m).unwrap();
            }
            for m in &msgs {
                assert_eq!(rx.recvmsg().unwrap().unwrap(), m.clone());
            }
        }
    }
}
