//! Qids: the server's unique identification of a file.
//!
//! In 1st-edition 9P a qid is eight bytes: a 32-bit `path` and a 32-bit
//! `version`. Directories are distinguished by the `CHDIR` bit set in
//! the path (and in the file mode).

/// The directory bit, set in both `Qid::path` and `Dir::mode`.
pub const CHDIR: u32 = 0x8000_0000;

/// An append-only file (kept for mode compatibility; unused by qids).
pub const CHAPPEND: u32 = 0x4000_0000;

/// An exclusive-use file.
pub const CHEXCL: u32 = 0x2000_0000;

/// The server's unique identification of a file.
///
/// Two files on the same server are the same file if and only if their
/// qids are equal. The `version` field changes each time the file is
/// modified, so clients can cheaply detect staleness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Qid {
    /// Unique path number; the top bit ([`CHDIR`]) marks directories.
    pub path: u32,
    /// Modification version of the file.
    pub version: u32,
}

impl Qid {
    /// Creates a qid for a plain file.
    pub fn file(path: u32, version: u32) -> Self {
        Qid {
            path: path & !CHDIR,
            version,
        }
    }

    /// Creates a qid for a directory (sets the [`CHDIR`] bit).
    pub fn dir(path: u32, version: u32) -> Self {
        Qid {
            path: path | CHDIR,
            version,
        }
    }

    /// Reports whether this qid names a directory.
    pub fn is_dir(&self) -> bool {
        self.path & CHDIR != 0
    }

    /// The path with the type bits masked off.
    pub fn path_bits(&self) -> u32 {
        self.path & !(CHDIR | CHAPPEND | CHEXCL)
    }
}

impl std::fmt::Display for Qid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({:#010x} {} {})",
            self.path_bits(),
            self.version,
            if self.is_dir() { "d" } else { "-" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_bit_set_and_detected() {
        let q = Qid::dir(7, 0);
        assert!(q.is_dir());
        assert_eq!(q.path_bits(), 7);
    }

    #[test]
    fn file_bit_clear() {
        let q = Qid::file(CHDIR | 9, 3);
        assert!(!q.is_dir());
        assert_eq!(q.path_bits(), 9);
        assert_eq!(q.version, 3);
    }

    #[test]
    fn equality_is_path_and_version() {
        assert_eq!(Qid::file(1, 2), Qid::file(1, 2));
        assert_ne!(Qid::file(1, 2), Qid::file(1, 3));
        assert_ne!(Qid::file(1, 2), Qid::dir(1, 2));
    }

    #[test]
    fn display_marks_directories() {
        assert!(Qid::dir(1, 0).to_string().ends_with("d)"));
        assert!(Qid::file(1, 0).to_string().ends_with("-)"));
    }
}
