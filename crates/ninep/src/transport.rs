//! Transport abstractions for carrying 9P.
//!
//! 9P assumes a transport that is reliable, sequenced, and
//! delimiter-preserving (§2.1). [`MsgSink`]/[`MsgSource`] model such a
//! transport directly: one call, one message. Byte-stream transports that
//! lose delimiters (TCP) are modeled by [`ByteSink`]/[`ByteSource`] and
//! adapted with the [`crate::marshal`] module.

use crate::{NineError, Result};
use plan9_support::chan::{unbounded, Receiver, Sender};

/// The sending half of a delimited, reliable, sequenced message transport.
pub trait MsgSink: Send {
    /// Sends one message; the receiver will see exactly these bytes as one
    /// unit.
    fn sendmsg(&mut self, msg: &[u8]) -> Result<()>;
}

/// The receiving half of a delimited, reliable, sequenced message
/// transport.
pub trait MsgSource: Send {
    /// Blocks for the next message; `Ok(None)` signals orderly shutdown.
    fn recvmsg(&mut self) -> Result<Option<Vec<u8>>>;
}

/// The sending half of an undelimited byte-stream transport (e.g. TCP).
pub trait ByteSink: Send {
    /// Queues bytes onto the stream; boundaries are *not* preserved.
    fn send_bytes(&mut self, bytes: &[u8]) -> Result<()>;
}

/// The receiving half of an undelimited byte-stream transport.
pub trait ByteSource: Send {
    /// Blocks for the next chunk of bytes, of arbitrary size; `Ok(None)`
    /// signals orderly shutdown.
    fn recv_some(&mut self) -> Result<Option<Vec<u8>>>;
}

/// One end of an in-memory delimited duplex pipe, useful for connecting a
/// client and server in the same process (the `mount` of a pipe to a user
/// process in §2.1).
pub struct MsgPipeEnd {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl MsgPipeEnd {
    /// Creates a connected pair of pipe ends.
    pub fn pair() -> (MsgPipeEnd, MsgPipeEnd) {
        let (atx, arx) = unbounded();
        let (btx, brx) = unbounded();
        (
            MsgPipeEnd { tx: atx, rx: brx },
            MsgPipeEnd { tx: btx, rx: arx },
        )
    }

    /// Splits this end into separate sink and source halves.
    pub fn split(self) -> (MsgPipeSink, MsgPipeSource) {
        (MsgPipeSink { tx: self.tx }, MsgPipeSource { rx: self.rx })
    }
}

impl MsgSink for MsgPipeEnd {
    fn sendmsg(&mut self, msg: &[u8]) -> Result<()> {
        self.tx
            .send(msg.to_vec())
            .map_err(|_| NineError::new(crate::errstr::EHUNGUP))
    }
}

impl MsgSource for MsgPipeEnd {
    fn recvmsg(&mut self) -> Result<Option<Vec<u8>>> {
        Ok(self.rx.recv().ok())
    }
}

/// The sink half of a split [`MsgPipeEnd`].
pub struct MsgPipeSink {
    tx: Sender<Vec<u8>>,
}

impl MsgSink for MsgPipeSink {
    fn sendmsg(&mut self, msg: &[u8]) -> Result<()> {
        self.tx
            .send(msg.to_vec())
            .map_err(|_| NineError::new(crate::errstr::EHUNGUP))
    }
}

/// The source half of a split [`MsgPipeEnd`].
pub struct MsgPipeSource {
    rx: Receiver<Vec<u8>>,
}

impl MsgSource for MsgPipeSource {
    fn recvmsg(&mut self) -> Result<Option<Vec<u8>>> {
        Ok(self.rx.recv().ok())
    }
}

/// One end of an in-memory *byte-stream* duplex pipe that deliberately
/// destroys message boundaries, for testing the marshaling layer.
pub struct BytePipeEnd {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// If nonzero, incoming chunks are re-sliced to at most this size, to
    /// exercise reassembly.
    pub max_chunk: usize,
    pending: Vec<u8>,
}

impl BytePipeEnd {
    /// Creates a connected pair of byte-pipe ends.
    pub fn pair() -> (BytePipeEnd, BytePipeEnd) {
        let (atx, arx) = unbounded();
        let (btx, brx) = unbounded();
        (
            BytePipeEnd {
                tx: atx,
                rx: brx,
                max_chunk: 0,
                pending: Vec::new(),
            },
            BytePipeEnd {
                tx: btx,
                rx: arx,
                max_chunk: 0,
                pending: Vec::new(),
            },
        )
    }
}

impl ByteSink for BytePipeEnd {
    fn send_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        self.tx
            .send(bytes.to_vec())
            .map_err(|_| NineError::new(crate::errstr::EHUNGUP))
    }
}

impl ByteSource for BytePipeEnd {
    fn recv_some(&mut self) -> Result<Option<Vec<u8>>> {
        if self.pending.is_empty() {
            match self.rx.recv() {
                Ok(chunk) => self.pending = chunk,
                Err(_) => return Ok(None),
            }
        }
        let n = if self.max_chunk > 0 {
            self.pending.len().min(self.max_chunk)
        } else {
            self.pending.len()
        };
        let head: Vec<u8> = self.pending.drain(..n).collect();
        Ok(Some(head))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_pipe_preserves_delimiters() {
        let (mut a, mut b) = MsgPipeEnd::pair();
        a.sendmsg(b"one").unwrap();
        a.sendmsg(b"two").unwrap();
        assert_eq!(b.recvmsg().unwrap().unwrap(), b"one");
        assert_eq!(b.recvmsg().unwrap().unwrap(), b"two");
    }

    #[test]
    fn msg_pipe_eof_on_drop() {
        let (a, mut b) = MsgPipeEnd::pair();
        drop(a);
        assert_eq!(b.recvmsg().unwrap(), None);
    }

    #[test]
    fn byte_pipe_rechunks() {
        let (mut a, mut b) = BytePipeEnd::pair();
        b.max_chunk = 2;
        a.send_bytes(b"hello").unwrap();
        assert_eq!(b.recv_some().unwrap().unwrap(), b"he");
        assert_eq!(b.recv_some().unwrap().unwrap(), b"ll");
        assert_eq!(b.recv_some().unwrap().unwrap(), b"o");
    }
}
