//! The Plan 9 file system protocol, 9P, as described in *The Organization of
//! Networks in Plan 9* (Presotto & Winterbottom, USENIX 1993) and the Plan 9
//! 1st edition manual.
//!
//! The protocol consists of **17 messages** describing operations on files
//! and directories: `nop`, `osession`, `session`, `error`, `flush`,
//! `attach`, `clone`, `walk`, `clwalk`, `open`, `create`, `read`, `write`,
//! `clunk`, `remove`, `stat` and `wstat`. Each has a `T` (request) and `R`
//! (reply) form except `error`, which is reply-only.
//!
//! 9P relies on several properties of the underlying transport: messages
//! arrive reliably, in sequence, and with delimiters preserved. When a
//! transport does not meet the delimiter requirement (for example, TCP),
//! the [`marshal`] module provides the mechanism the paper alludes to for
//! marshaling messages before handing them to the system.
//!
//! Module map:
//! * [`fcall`] — the message enums and wire constants.
//! * [`codec`] — binary encode/decode of messages.
//! * [`dir`] — the fixed-size directory (stat) entry.
//! * [`qid`] — unique file identifiers.
//! * [`marshal`] — delimiter reconstruction over byte streams.
//! * [`transport`] — message-oriented transport traits.
//! * [`client`] — a tag-multiplexed concurrent RPC client.
//! * [`server`] — the serve loop, dispatching to a handler.
//! * [`procfs`] — the *procedural* form of 9P used by kernel-resident
//!   device drivers (the paper, §2.1).

pub mod client;
pub mod codec;
pub mod dir;
pub mod fcall;
pub mod marshal;
pub mod procfs;
pub mod qid;
pub mod server;
pub mod transport;

pub use client::NineClient;
pub use dir::Dir;
pub use fcall::{Fid, Rmsg, Tag, Tmsg, MAX_FDATA, MAX_MSG, NAME_LEN};
pub use procfs::{OpenMode, Perm, ProcFs, ServeNode};
pub use qid::Qid;

/// An error produced by the protocol layer.
///
/// 9P carries errors as strings (`Rerror` has a single `ename` field), so
/// the Rust error type is string-based too; this keeps remote and local
/// errors uniform, exactly as Plan 9 does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NineError(pub String);

impl NineError {
    /// Creates an error from anything stringly.
    pub fn new(msg: impl Into<String>) -> Self {
        NineError(msg.into())
    }
}

impl std::fmt::Display for NineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for NineError {}

impl From<&str> for NineError {
    fn from(s: &str) -> Self {
        NineError(s.to_string())
    }
}

impl From<String> for NineError {
    fn from(s: String) -> Self {
        NineError(s)
    }
}

/// Result alias used throughout the protocol crates.
pub type Result<T> = std::result::Result<T, NineError>;

/// Well-known Plan 9 error strings, used by devices and servers so that
/// tests can match on exact text, as Plan 9 programs do.
pub mod errstr {
    /// The requested file does not exist.
    pub const ENOTEXIST: &str = "file does not exist";
    /// Permission denied.
    pub const EPERM: &str = "permission denied";
    /// A fid was used that the server does not know.
    pub const EUNKNOWNFID: &str = "unknown fid";
    /// A fid was reused while still in use.
    pub const EFIDINUSE: &str = "fid in use";
    /// Walk in a non-directory.
    pub const ENOTDIR: &str = "not a directory";
    /// I/O on a fid that is not open.
    pub const ENOTOPEN: &str = "file not open";
    /// Open/create of an already-open fid.
    pub const EISOPEN: &str = "file already open for I/O";
    /// Create of an existing name.
    pub const EEXIST: &str = "file already exists";
    /// Write or truncate on a directory.
    pub const EISDIR: &str = "file is a directory";
    /// Message malformed at the codec layer.
    pub const EBADMSG: &str = "malformed 9P message";
    /// Read/write count too large.
    pub const ETOOBIG: &str = "count too large";
    /// Operation interrupted by flush.
    pub const EFLUSHED: &str = "interrupted";
    /// Connection shut down.
    pub const EHUNGUP: &str = "hungup channel";
    /// Bad open/create mode.
    pub const EBADMODE: &str = "bad open mode";
    /// Bad attach specifier.
    pub const EBADATTACH: &str = "unknown attach specifier";
    /// Obsolete message type (Tosession).
    pub const EOBSOLETE: &str = "obsolete message";
    /// Device/operation mismatch.
    pub const EBADUSE: &str = "inappropriate use of fid";
}
