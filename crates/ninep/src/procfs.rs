//! The *procedural* form of 9P.
//!
//! The paper (§2.1): "Kernel resident device and protocol drivers use a
//! procedural version of the protocol while external file servers use an
//! RPC form." [`ProcFs`] is that procedural version: every kernel-resident
//! device driver in this reproduction implements it, the mount driver
//! converts it to RPCs, and [`crate::server`] converts RPCs back into
//! calls on a `ProcFs`.

use crate::dir::{Dir, DIR_LEN};
use crate::qid::Qid;
use crate::{errstr, NineError, Result};
use plan9_support::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Open for reading.
pub const OREAD: u8 = 0;
/// Open for writing.
pub const OWRITE: u8 = 1;
/// Open for reading and writing.
pub const ORDWR: u8 = 2;
/// Open for execution (treated as read here).
pub const OEXEC: u8 = 3;
/// Truncate on open.
pub const OTRUNC: u8 = 0x10;
/// Remove the file when the channel is clunked.
pub const ORCLOSE: u8 = 0x40;

/// An open mode, as written in `Topen`/`Tcreate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenMode(pub u8);

impl OpenMode {
    /// Plain read-only mode.
    pub const READ: OpenMode = OpenMode(OREAD);
    /// Plain write-only mode.
    pub const WRITE: OpenMode = OpenMode(OWRITE);
    /// Read-write mode.
    pub const RDWR: OpenMode = OpenMode(ORDWR);

    /// The access class with flag bits removed.
    pub fn access(&self) -> u8 {
        self.0 & 3
    }

    /// Whether reads are permitted.
    pub fn readable(&self) -> bool {
        matches!(self.access(), OREAD | ORDWR | OEXEC)
    }

    /// Whether writes are permitted.
    pub fn writable(&self) -> bool {
        matches!(self.access(), OWRITE | ORDWR)
    }

    /// Whether the file is truncated on open.
    pub fn truncates(&self) -> bool {
        self.0 & OTRUNC != 0
    }

    /// Whether the file is removed on clunk.
    pub fn rclose(&self) -> bool {
        self.0 & ORCLOSE != 0
    }
}

/// File permissions, as in `Tcreate`; the top bit is CHDIR.
pub type Perm = u32;

/// A server-side handle on a file, the procedural analogue of a fid.
///
/// The `handle` is opaque to callers; devices use it to find per-channel
/// state. The qid rides along so the layer above can answer cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeNode {
    /// The qid of the file the node references.
    pub qid: Qid,
    /// Device-private identifier.
    pub handle: u64,
}

impl ServeNode {
    /// Builds a node.
    pub fn new(qid: Qid, handle: u64) -> ServeNode {
        ServeNode { qid, handle }
    }
}

/// The procedural version of the 9P protocol (§2.1).
///
/// Implementations must be thread-safe: the mount driver demultiplexes
/// many processes onto one file server, so concurrent calls are the norm.
///
/// Blocking is allowed and expected: `read` on a network `data` file
/// blocks until a message arrives, `open` on a `listen` file blocks until
/// an incoming call, exactly as in Plan 9.
pub trait ProcFs: Send + Sync {
    /// A short device name (`ether`, `tcp`, `cs`, ...), used in paths and
    /// diagnostics.
    fn fsname(&self) -> String;

    /// Authenticates `uname` and returns a node for the tree root.
    fn attach(&self, uname: &str, aname: &str) -> Result<ServeNode>;

    /// Duplicates a node (the `clone` message): both nodes then evolve
    /// independently.
    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode>;

    /// Moves a node one level down the hierarchy. Devices must accept
    /// `..` (at the root it stays at the root).
    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode>;

    /// Prepares a node for I/O; may block (e.g. `listen` files).
    fn open(&self, n: &ServeNode, mode: OpenMode) -> Result<ServeNode>;

    /// Creates `name` in the directory referenced by the node, then opens
    /// it. Most devices refuse creation.
    fn create(&self, _n: &ServeNode, _name: &str, _perm: Perm, _mode: OpenMode) -> Result<ServeNode> {
        Err(NineError::new(errstr::EPERM))
    }

    /// Reads up to `count` bytes at `offset`. Directory reads return whole
    /// encoded [`Dir`] entries.
    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>>;

    /// Writes bytes at `offset`, returning the number accepted.
    fn write(&self, n: &ServeNode, offset: u64, data: &[u8]) -> Result<usize>;

    /// Discards a node without affecting the file. Never fails.
    fn clunk(&self, n: &ServeNode);

    /// Removes the file referenced by the node and discards the node.
    fn remove(&self, _n: &ServeNode) -> Result<()> {
        Err(NineError::new(errstr::EPERM))
    }

    /// Reads the attributes of the file.
    fn stat(&self, n: &ServeNode) -> Result<Dir>;

    /// Writes the attributes of the file.
    fn wstat(&self, _n: &ServeNode, _d: &Dir) -> Result<()> {
        Err(NineError::new(errstr::EPERM))
    }
}

/// Serializes a directory listing for a `read` at `offset`/`count`,
/// returning whole entries only, as 9P requires.
pub fn read_dir_slice(entries: &[Dir], offset: u64, count: usize) -> Result<Vec<u8>> {
    if !offset.is_multiple_of(DIR_LEN as u64) {
        return Err(NineError::new("directory read not aligned"));
    }
    let start = (offset / DIR_LEN as u64) as usize;
    let nwhole = count / DIR_LEN;
    let mut out = Vec::with_capacity(nwhole * DIR_LEN);
    for e in entries.iter().skip(start).take(nwhole) {
        out.extend_from_slice(&e.encode());
    }
    Ok(out)
}

/// Walks `node` along a `/`-separated path, consuming empty elements.
pub fn walk_path(fs: &dyn ProcFs, node: &ServeNode, path: &str) -> Result<ServeNode> {
    let mut cur = *node;
    for elem in path.split('/').filter(|e| !e.is_empty() && *e != ".") {
        let next = fs.walk(&cur, elem)?;
        if next.handle != cur.handle {
            fs.clunk(&cur);
        }
        cur = next;
    }
    Ok(cur)
}

// ---------------------------------------------------------------------------
// MemFs: an in-memory file tree implementing ProcFs.
// ---------------------------------------------------------------------------

/// A node in the in-memory tree.
struct MemNode {
    dir: Dir,
    parent: u32,
    children: Vec<u32>,
    data: Vec<u8>,
    removed: bool,
}

struct MemInner {
    nodes: HashMap<u32, MemNode>,
    next_path: u32,
}

/// A simple RAM file server.
///
/// Plan 9 file servers mostly have no permanent storage (§2.1); `MemFs`
/// is the smallest such server: a tree of files in memory. It backs
/// `/tmp`, test fixtures, and exportfs round-trip tests.
pub struct MemFs {
    name: String,
    owner: String,
    inner: Mutex<MemInner>,
    handles: AtomicU64,
}

impl MemFs {
    /// Creates an empty tree owned by `owner`.
    pub fn new(name: &str, owner: &str) -> Arc<MemFs> {
        let mut nodes = HashMap::new();
        nodes.insert(
            0,
            MemNode {
                dir: Dir::directory("/", Qid::dir(0, 0), 0o777, owner),
                parent: 0,
                children: Vec::new(),
                data: Vec::new(),
                removed: false,
            },
        );
        Arc::new(MemFs {
            name: name.to_string(),
            owner: owner.to_string(),
            inner: Mutex::named(MemInner {
                nodes,
                next_path: 1,
            }, "ninep.procfs"),
            handles: AtomicU64::new(1),
        })
    }

    /// Convenience: create an (empty) directory at an absolute path,
    /// making parents.
    pub fn put_dir(&self, path: &str) -> Result<()> {
        let marker = format!("{}/.#dir", path.trim_end_matches('/'));
        self.put_file(&marker, b"")?;
        // Remove the marker file, leaving the directory behind.
        let root = self.attach("", "")?;
        let node = walk_path(self, &root, &marker)?;
        self.remove(&node)
    }

    /// Convenience: create a file at an absolute path, making parents.
    pub fn put_file(&self, path: &str, contents: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        let mut cur = 0u32;
        let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        if parts.is_empty() {
            return Err(NineError::new("empty path"));
        }
        for (i, part) in parts.iter().enumerate() {
            let last = i + 1 == parts.len();
            let existing = inner.nodes[&cur]
                .children
                .iter()
                .copied()
                .find(|c| inner.nodes[c].dir.name == *part);
            match existing {
                Some(c) if last => {
                    // checked: `c` came from this node map under the same lock
                    let node = inner.nodes.get_mut(&c).unwrap();
                    node.data = contents.to_vec();
                    node.dir.length = contents.len() as u64;
                    node.dir.qid.version += 1;
                    return Ok(());
                }
                Some(c) => cur = c,
                None => {
                    let path_no = inner.next_path;
                    inner.next_path += 1;
                    let dir = if last {
                        let mut d = Dir::file(part, Qid::file(path_no, 0), 0o666, &self.owner, 0);
                        d.length = contents.len() as u64;
                        d
                    } else {
                        Dir::directory(part, Qid::dir(path_no, 0), 0o777, &self.owner)
                    };
                    inner.nodes.insert(
                        path_no,
                        MemNode {
                            dir,
                            parent: cur,
                            children: Vec::new(),
                            data: if last { contents.to_vec() } else { Vec::new() },
                            removed: false,
                        },
                    );
                    // checked: `cur` walked the live tree under this same lock
                    inner.nodes.get_mut(&cur).unwrap().children.push(path_no);
                    cur = path_no;
                }
            }
        }
        Ok(())
    }

    fn qid_to_id(&self, q: Qid) -> u32 {
        q.path_bits()
    }

    fn node_for(&self, n: &ServeNode) -> Result<u32> {
        let id = self.qid_to_id(n.qid);
        let inner = self.inner.lock();
        match inner.nodes.get(&id) {
            Some(node) if !node.removed => Ok(id),
            _ => Err(NineError::new(errstr::ENOTEXIST)),
        }
    }

    fn fresh_handle(&self) -> u64 {
        self.handles.fetch_add(1, Ordering::Relaxed)
    }
}

impl ProcFs for MemFs {
    fn fsname(&self) -> String {
        self.name.clone()
    }

    fn attach(&self, _uname: &str, _aname: &str) -> Result<ServeNode> {
        let inner = self.inner.lock();
        Ok(ServeNode::new(inner.nodes[&0].dir.qid, self.fresh_handle()))
    }

    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode> {
        self.node_for(n)?;
        Ok(ServeNode::new(n.qid, self.fresh_handle()))
    }

    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode> {
        let id = self.node_for(n)?;
        let inner = self.inner.lock();
        let node = &inner.nodes[&id];
        if !node.dir.is_dir() {
            return Err(NineError::new(errstr::ENOTDIR));
        }
        if name == ".." {
            let parent = &inner.nodes[&node.parent];
            return Ok(ServeNode::new(parent.dir.qid, n.handle));
        }
        for c in &node.children {
            let child = &inner.nodes[c];
            if child.dir.name == name && !child.removed {
                return Ok(ServeNode::new(child.dir.qid, n.handle));
            }
        }
        Err(NineError::new(errstr::ENOTEXIST))
    }

    fn open(&self, n: &ServeNode, mode: OpenMode) -> Result<ServeNode> {
        let id = self.node_for(n)?;
        let mut inner = self.inner.lock();
        // checked: node_for validated `id` against the live tree
        let node = inner.nodes.get_mut(&id).unwrap();
        if node.dir.is_dir() && mode.access() != OREAD {
            return Err(NineError::new(errstr::EISDIR));
        }
        if mode.truncates() && !node.dir.is_dir() {
            node.data.clear();
            node.dir.length = 0;
            node.dir.qid.version += 1;
        }
        Ok(ServeNode::new(node.dir.qid, n.handle))
    }

    fn create(&self, n: &ServeNode, name: &str, perm: Perm, _mode: OpenMode) -> Result<ServeNode> {
        let id = self.node_for(n)?;
        let mut inner = self.inner.lock();
        if !inner.nodes[&id].dir.is_dir() {
            return Err(NineError::new(errstr::ENOTDIR));
        }
        if name.is_empty() || name == "." || name == ".." || name.contains('/') {
            return Err(NineError::new("bad file name"));
        }
        let dup = inner.nodes[&id]
            .children
            .iter()
            .any(|c| inner.nodes[c].dir.name == name && !inner.nodes[c].removed);
        if dup {
            return Err(NineError::new(errstr::EEXIST));
        }
        let path_no = inner.next_path;
        inner.next_path += 1;
        let is_dir = perm & crate::qid::CHDIR != 0;
        let dir = if is_dir {
            Dir::directory(name, Qid::dir(path_no, 0), perm & 0o777, &self.owner)
        } else {
            Dir::file(name, Qid::file(path_no, 0), perm & 0o777, &self.owner, 0)
        };
        let qid = dir.qid;
        inner.nodes.insert(
            path_no,
            MemNode {
                dir,
                parent: id,
                children: Vec::new(),
                data: Vec::new(),
                removed: false,
            },
        );
        // checked: node_for validated `id` against the live tree
        inner.nodes.get_mut(&id).unwrap().children.push(path_no);
        Ok(ServeNode::new(qid, n.handle))
    }

    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>> {
        let id = self.node_for(n)?;
        let inner = self.inner.lock();
        let node = &inner.nodes[&id];
        if node.dir.is_dir() {
            let entries: Vec<Dir> = node
                .children
                .iter()
                .filter(|c| !inner.nodes[*c].removed)
                .map(|c| inner.nodes[c].dir.clone())
                .collect();
            return read_dir_slice(&entries, offset, count);
        }
        let off = offset as usize;
        if off >= node.data.len() {
            return Ok(Vec::new());
        }
        let end = (off + count).min(node.data.len());
        Ok(node.data[off..end].to_vec())
    }

    fn write(&self, n: &ServeNode, offset: u64, data: &[u8]) -> Result<usize> {
        let id = self.node_for(n)?;
        let mut inner = self.inner.lock();
        // checked: node_for validated `id` against the live tree
        let node = inner.nodes.get_mut(&id).unwrap();
        if node.dir.is_dir() {
            return Err(NineError::new(errstr::EISDIR));
        }
        let off = offset as usize;
        if node.data.len() < off + data.len() {
            node.data.resize(off + data.len(), 0);
        }
        node.data[off..off + data.len()].copy_from_slice(data);
        node.dir.length = node.data.len() as u64;
        node.dir.qid.version += 1;
        Ok(data.len())
    }

    fn clunk(&self, _n: &ServeNode) {}

    fn remove(&self, n: &ServeNode) -> Result<()> {
        let id = self.node_for(n)?;
        if id == 0 {
            return Err(NineError::new(errstr::EPERM));
        }
        let mut inner = self.inner.lock();
        if !inner.nodes[&id].children.is_empty() {
            return Err(NineError::new("directory not empty"));
        }
        let parent = inner.nodes[&id].parent;
        // checked: node_for validated `id`; `parent` is a live node's parent link
        inner.nodes.get_mut(&id).unwrap().removed = true;
        // checked: node_for validated `id`; `parent` is a live node's parent link
        let p = inner.nodes.get_mut(&parent).unwrap();
        p.children.retain(|c| *c != id);
        inner.nodes.remove(&id);
        Ok(())
    }

    fn stat(&self, n: &ServeNode) -> Result<Dir> {
        let id = self.node_for(n)?;
        let inner = self.inner.lock();
        Ok(inner.nodes[&id].dir.clone())
    }

    fn wstat(&self, n: &ServeNode, d: &Dir) -> Result<()> {
        let id = self.node_for(n)?;
        let mut inner = self.inner.lock();
        // Renames must not collide with a sibling.
        let parent = inner.nodes[&id].parent;
        if d.name != inner.nodes[&id].dir.name {
            let dup = inner.nodes[&parent]
                .children
                .iter()
                .any(|c| *c != id && inner.nodes[c].dir.name == d.name);
            if dup {
                return Err(NineError::new(errstr::EEXIST));
            }
        }
        // checked: node_for validated `id` against the live tree
        let node = inner.nodes.get_mut(&id).unwrap();
        node.dir.name = d.name.clone();
        node.dir.mode = (node.dir.mode & crate::qid::CHDIR) | (d.mode & 0o777);
        node.dir.mtime = d.mtime;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_modes() {
        assert!(OpenMode::READ.readable());
        assert!(!OpenMode::READ.writable());
        assert!(OpenMode::RDWR.readable() && OpenMode::RDWR.writable());
        assert!(OpenMode(OWRITE | OTRUNC).truncates());
        assert!(OpenMode(OREAD | ORCLOSE).rclose());
    }

    #[test]
    fn memfs_walk_read_write() {
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/a/b/hello.txt", b"hi there").unwrap();
        let root = fs.attach("philw", "").unwrap();
        let f = walk_path(&*fs, &root, "a/b/hello.txt").unwrap();
        let f = fs.open(&f, OpenMode::READ).unwrap();
        assert_eq!(fs.read(&f, 0, 100).unwrap(), b"hi there");
        assert_eq!(fs.read(&f, 3, 100).unwrap(), b"there");
        assert_eq!(fs.read(&f, 100, 10).unwrap(), b"");
    }

    #[test]
    fn memfs_dir_listing_is_dir_entries() {
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/x/one", b"1").unwrap();
        fs.put_file("/x/two", b"22").unwrap();
        let root = fs.attach("u", "").unwrap();
        let d = walk_path(&*fs, &root, "x").unwrap();
        let bytes = fs.read(&d, 0, 4 * DIR_LEN).unwrap();
        assert_eq!(bytes.len(), 2 * DIR_LEN);
        let one = Dir::decode(&bytes[..DIR_LEN]).unwrap();
        let two = Dir::decode(&bytes[DIR_LEN..]).unwrap();
        assert_eq!(one.name, "one");
        assert_eq!(two.name, "two");
        assert_eq!(two.length, 2);
    }

    #[test]
    fn memfs_create_remove() {
        let fs = MemFs::new("ram", "bootes");
        let root = fs.attach("u", "").unwrap();
        let f = fs
            .create(&root, "made", 0o644, OpenMode::WRITE)
            .unwrap();
        assert_eq!(fs.write(&f, 0, b"abc").unwrap(), 3);
        assert!(fs.create(&root, "made", 0o644, OpenMode::WRITE).is_err());
        fs.remove(&f).unwrap();
        assert!(walk_path(&*fs, &root, "made").is_err());
    }

    #[test]
    fn memfs_dotdot_walk() {
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/d/f", b"x").unwrap();
        let root = fs.attach("u", "").unwrap();
        let d = walk_path(&*fs, &root, "d").unwrap();
        let up = fs.walk(&d, "..").unwrap();
        assert_eq!(up.qid, root.qid);
        // `..` at the root stays at the root.
        let up2 = fs.walk(&up, "..").unwrap();
        assert_eq!(up2.qid, root.qid);
    }

    #[test]
    fn memfs_truncate_on_open() {
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/f", b"0123456789").unwrap();
        let root = fs.attach("u", "").unwrap();
        let f = walk_path(&*fs, &root, "f").unwrap();
        let f = fs.open(&f, OpenMode(OWRITE | OTRUNC)).unwrap();
        assert_eq!(fs.stat(&f).unwrap().length, 0);
    }

    #[test]
    fn memfs_wstat_rename() {
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/old", b"x").unwrap();
        fs.put_file("/other", b"y").unwrap();
        let root = fs.attach("u", "").unwrap();
        let f = walk_path(&*fs, &root, "old").unwrap();
        let mut d = fs.stat(&f).unwrap();
        d.name = "other".into();
        assert!(fs.wstat(&f, &d).is_err(), "rename onto existing name");
        d.name = "new".into();
        fs.wstat(&f, &d).unwrap();
        assert!(walk_path(&*fs, &root, "new").is_ok());
    }

    #[test]
    fn dir_slice_alignment_enforced() {
        let entries = vec![Dir::file("a", Qid::file(1, 0), 0o644, "u", 0)];
        assert!(read_dir_slice(&entries, 1, DIR_LEN).is_err());
        assert_eq!(read_dir_slice(&entries, 0, DIR_LEN - 1).unwrap().len(), 0);
        assert_eq!(
            read_dir_slice(&entries, DIR_LEN as u64, DIR_LEN).unwrap().len(),
            0
        );
    }
}
