//! A single-file query server: write a question, read answers line by
//! line.
//!
//! "A client writes a symbolic name to /net/cs then reads one line for
//! each matching destination reachable from this system." DNS works the
//! same way on `/net/dns`. [`QueryFs`] captures that conversation once;
//! CS and DNS plug in their translation functions.

use plan9_support::sync::Mutex;
use plan9_ninep::procfs::{read_dir_slice, OpenMode, ProcFs, ServeNode};
use plan9_ninep::qid::Qid;
use plan9_ninep::{errstr, Dir, NineError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Translates one written query into reply lines.
pub type QueryHandler = Box<dyn Fn(&str) -> Result<Vec<String>> + Send + Sync>;

struct Conversation {
    lines: Vec<String>,
    next: usize,
}

/// A file server with one file; each open channel holds an independent
/// query conversation.
pub struct QueryFs {
    name: String,
    fname: String,
    handler: QueryHandler,
    convs: Mutex<HashMap<u64, Conversation>>,
    handles: AtomicU64,
}

const QROOT: u32 = 0;
const QFILE: u32 = 1;

impl QueryFs {
    /// Creates a query server whose single file is named `fname`.
    pub fn new(name: &str, fname: &str, handler: QueryHandler) -> std::sync::Arc<QueryFs> {
        std::sync::Arc::new(QueryFs {
            name: name.to_string(),
            fname: fname.to_string(),
            handler,
            convs: Mutex::new(HashMap::new()),
            handles: AtomicU64::new(1),
        })
    }

    fn fresh(&self, qid: Qid) -> ServeNode {
        ServeNode::new(qid, self.handles.fetch_add(1, Ordering::Relaxed))
    }

    fn file_dir(&self) -> Dir {
        let mut d = Dir::file(&self.fname, Qid::file(QFILE, 0), 0o666, "network", 0);
        d.dev_type = b'x' as u16;
        d
    }
}

impl ProcFs for QueryFs {
    fn fsname(&self) -> String {
        self.name.clone()
    }

    fn attach(&self, _uname: &str, _aname: &str) -> Result<ServeNode> {
        Ok(self.fresh(Qid::dir(QROOT, 0)))
    }

    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode> {
        Ok(self.fresh(n.qid))
    }

    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode> {
        if !n.qid.is_dir() {
            return Err(NineError::new(errstr::ENOTDIR));
        }
        match name {
            ".." => Ok(*n),
            x if x == self.fname => Ok(ServeNode::new(Qid::file(QFILE, 0), n.handle)),
            _ => Err(NineError::new(errstr::ENOTEXIST)),
        }
    }

    fn open(&self, n: &ServeNode, mode: OpenMode) -> Result<ServeNode> {
        if n.qid.is_dir() {
            if mode.access() != 0 {
                return Err(NineError::new(errstr::EISDIR));
            }
            return Ok(*n);
        }
        self.convs.lock().insert(
            n.handle,
            Conversation {
                lines: Vec::new(),
                next: 0,
            },
        );
        Ok(*n)
    }

    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>> {
        if n.qid.is_dir() {
            return read_dir_slice(&[self.file_dir()], offset, count);
        }
        let mut convs = self.convs.lock();
        let conv = convs
            .get_mut(&n.handle)
            .ok_or_else(|| NineError::new(errstr::ENOTOPEN))?;
        // One line per read, newline-free, like ndb/cs.
        if conv.next >= conv.lines.len() {
            return Ok(Vec::new());
        }
        let line = &conv.lines[conv.next];
        conv.next += 1;
        Ok(line.as_bytes().iter().copied().take(count).collect())
    }

    fn write(&self, n: &ServeNode, _offset: u64, data: &[u8]) -> Result<usize> {
        if n.qid.is_dir() {
            return Err(NineError::new(errstr::EISDIR));
        }
        let query = std::str::from_utf8(data)
            .map_err(|_| NineError::new("query is not text"))?
            .trim()
            .to_string();
        let lines = (self.handler)(&query)?;
        let mut convs = self.convs.lock();
        let conv = convs
            .get_mut(&n.handle)
            .ok_or_else(|| NineError::new(errstr::ENOTOPEN))?;
        conv.lines = lines;
        conv.next = 0;
        Ok(data.len())
    }

    fn clunk(&self, n: &ServeNode) {
        self.convs.lock().remove(&n.handle);
    }

    fn stat(&self, n: &ServeNode) -> Result<Dir> {
        if n.qid.is_dir() {
            Ok(Dir::directory("/", Qid::dir(QROOT, 0), 0o555, "network"))
        } else {
            Ok(self.file_dir())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_fs() -> std::sync::Arc<QueryFs> {
        QueryFs::new(
            "cs",
            "cs",
            Box::new(|q| {
                if q == "boom" {
                    return Err(NineError::new("translation failed"));
                }
                Ok(vec![format!("first {q}"), format!("second {q}")])
            }),
        )
    }

    #[test]
    fn write_then_read_lines() {
        let fs = echo_fs();
        let root = fs.attach("u", "").unwrap();
        let f = fs.walk(&root, "cs").unwrap();
        let f = fs.open(&f, OpenMode::RDWR).unwrap();
        fs.write(&f, 0, b"net!helix!9fs").unwrap();
        assert_eq!(fs.read(&f, 0, 256).unwrap(), b"first net!helix!9fs");
        assert_eq!(fs.read(&f, 0, 256).unwrap(), b"second net!helix!9fs");
        assert_eq!(fs.read(&f, 0, 256).unwrap(), b"");
    }

    #[test]
    fn conversations_are_per_channel() {
        let fs = echo_fs();
        let root = fs.attach("u", "").unwrap();
        let a = fs.clone_node(&root).unwrap();
        let a = fs.walk(&a, "cs").unwrap();
        let a = fs.open(&a, OpenMode::RDWR).unwrap();
        let b = fs.clone_node(&root).unwrap();
        let b = fs.walk(&b, "cs").unwrap();
        let b = fs.open(&b, OpenMode::RDWR).unwrap();
        fs.write(&a, 0, b"one").unwrap();
        fs.write(&b, 0, b"two").unwrap();
        assert_eq!(fs.read(&a, 0, 256).unwrap(), b"first one");
        assert_eq!(fs.read(&b, 0, 256).unwrap(), b"first two");
    }

    #[test]
    fn handler_errors_become_nine_errors() {
        let fs = echo_fs();
        let root = fs.attach("u", "").unwrap();
        let f = fs.walk(&root, "cs").unwrap();
        let f = fs.open(&f, OpenMode::RDWR).unwrap();
        let err = fs.write(&f, 0, b"boom").unwrap_err();
        assert_eq!(err.0, "translation failed");
    }

    #[test]
    fn directory_lists_the_single_file() {
        let fs = echo_fs();
        let root = fs.attach("u", "").unwrap();
        let root = fs.open(&root, OpenMode::READ).unwrap();
        let bytes = fs.read(&root, 0, 4096).unwrap();
        let d = Dir::decode(&bytes).unwrap();
        assert_eq!(d.name, "cs");
    }

    #[test]
    fn unopened_io_refused() {
        let fs = echo_fs();
        let root = fs.attach("u", "").unwrap();
        let f = fs.walk(&root, "cs").unwrap();
        assert!(fs.write(&f, 0, b"q").is_err());
        assert!(fs.read(&f, 0, 10).is_err());
    }
}
