//! The connection server (CS) and domain name server (DNS) of §4.2.
//!
//! "If tools are to be network independent, a third-party server must
//! resolve network names. A server on each machine, with local
//! knowledge, can select the best network for any particular destination
//! machine or service. Since the network devices present a common
//! interface, the only operation which differs between networks is name
//! resolution."
//!
//! Both servers follow the same file-server shape: CS serves the single
//! file `/net/cs`, DNS serves `/net/dns`. A client writes a query and
//! reads back one line per result — the [`qfile`] module implements that
//! conversation pattern once for both.

pub mod cs;
pub mod dns;
pub mod qfile;
pub mod zones;

pub use cs::{CsConfig, CsServer, NetworkDecl, NetworkKind};
pub use dns::DnsServer;
pub use qfile::QueryFs;
pub use zones::SimInternet;

/// Result alias matching the rest of the system.
pub type Result<T> = plan9_ninep::Result<T>;
