//! The connection server: translating symbolic names to dialable
//! addresses.
//!
//! "A symbolic name must be translated to the path of the clone file of
//! a protocol device and an ASCII address string to write to the ctl
//! file. ... A client writes a symbolic name to /net/cs then reads one
//! line for each matching destination reachable from this system. The
//! lines are of the form `filename message`."
//!
//! Meta-names (§4.2): the network `net` selects any network in common
//! between source and destination supporting the service; a host of the
//! form `$attr` searches the database for the attribute most closely
//! associated with the source host.

use crate::dns::DnsServer;
use crate::qfile::QueryFs;
use plan9_ndb::{ipattr_search, Db};
use plan9_ninep::{NineError, Result};
use std::sync::Arc;

/// What kind of addressing a network uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// IP protocols: addresses are dotted-decimal, services are ports.
    Ip,
    /// Datakit: addresses are path strings, services ride in the dial
    /// string.
    Datakit,
}

/// One network available on this machine, in preference order.
#[derive(Debug, Clone)]
pub struct NetworkDecl {
    /// The protocol directory name under `/net` (`il`, `tcp`, `udp`,
    /// `dk`).
    pub proto: String,
    /// Addressing family.
    pub kind: NetworkKind,
}

impl NetworkDecl {
    /// Declares an IP-family network.
    pub fn ip(proto: &str) -> NetworkDecl {
        NetworkDecl {
            proto: proto.to_string(),
            kind: NetworkKind::Ip,
        }
    }

    /// Declares a Datakit network.
    pub fn datakit(proto: &str) -> NetworkDecl {
        NetworkDecl {
            proto: proto.to_string(),
            kind: NetworkKind::Datakit,
        }
    }
}

/// Connection-server configuration: the machine's own identity and its
/// networks.
#[derive(Debug, Clone)]
pub struct CsConfig {
    /// The source system's name, anchoring `$attr` searches.
    pub sysname: String,
    /// Available networks in preference order ("local knowledge").
    pub networks: Vec<NetworkDecl>,
    /// Where protocol devices are mounted, conventionally `/net`.
    pub mount_prefix: String,
}

impl CsConfig {
    /// The conventional configuration: il, tcp, udp and dk under `/net`.
    pub fn standard(sysname: &str) -> CsConfig {
        CsConfig {
            sysname: sysname.to_string(),
            networks: vec![
                NetworkDecl::ip("il"),
                NetworkDecl::ip("tcp"),
                NetworkDecl::ip("udp"),
                NetworkDecl::datakit("dk"),
            ],
            mount_prefix: "/net".to_string(),
        }
    }
}

/// The connection server.
pub struct CsServer {
    cfg: CsConfig,
    db: Arc<Db>,
    dns: Option<Arc<DnsServer>>,
}

fn is_ip_literal(s: &str) -> bool {
    s.split('.').count() == 4 && s.split('.').all(|p| p.parse::<u8>().is_ok())
}

fn looks_like_domain(s: &str) -> bool {
    s.contains('.') && !is_ip_literal(s)
}

impl CsServer {
    /// Creates a connection server over the database, optionally backed
    /// by a DNS resolver for domain names.
    pub fn new(cfg: CsConfig, db: Arc<Db>, dns: Option<Arc<DnsServer>>) -> Arc<CsServer> {
        Arc::new(CsServer { cfg, db, dns })
    }

    /// Translates one symbolic name into `filename message` lines.
    pub fn translate(&self, query: &str) -> Result<Vec<String>> {
        let parts: Vec<&str> = query.split('!').collect();
        let (netname, host, svc) = match parts.as_slice() {
            [n, h] => (*n, *h, ""),
            [n, h, s] => (*n, *h, *s),
            _ => {
                return Err(NineError::new(format!(
                    "cannot translate address: {query}"
                )))
            }
        };
        // Expand $attr hosts via the closest-association search.
        let hosts: Vec<String> = if let Some(attr) = host.strip_prefix('$') {
            let found = ipattr_search(&self.db, &self.cfg.sysname, attr);
            if found.is_empty() {
                return Err(NineError::new(format!("no attribute match for ${attr}")));
            }
            found
        } else {
            vec![host.to_string()]
        };
        // Which networks to try.
        let nets: Vec<&NetworkDecl> = if netname == "net" {
            self.cfg.networks.iter().collect()
        } else {
            let found: Vec<&NetworkDecl> = self
                .cfg
                .networks
                .iter()
                .filter(|n| n.proto == netname)
                .collect();
            if found.is_empty() {
                return Err(NineError::new(format!("unknown network: {netname}")));
            }
            found
        };
        let mut lines = Vec::new();
        for h in &hosts {
            // "*" announces on every local address (§5.2's tcp!*!echo).
            if h == "*" {
                for net in &nets {
                    let line = match net.kind {
                        NetworkKind::Ip => match self.service_port(&net.proto, svc) {
                            Some(port) => {
                                format!("{}/{}/clone *!{}", self.cfg.mount_prefix, net.proto, port)
                            }
                            None if svc.is_empty() => {
                                format!("{}/{}/clone *", self.cfg.mount_prefix, net.proto)
                            }
                            None => continue,
                        },
                        NetworkKind::Datakit => {
                            format!("{}/{}/clone *!{}", self.cfg.mount_prefix, net.proto, svc)
                        }
                    };
                    lines.push(line);
                }
                continue;
            }
            let entry = self.db.find_system(h);
            // Destination's supported protocols, if the database knows.
            let dest_protos: Vec<String> = entry
                .as_ref()
                .map(|e| e.all("proto").iter().map(|s| s.to_string()).collect())
                .unwrap_or_default();
            for net in &nets {
                // The `net` meta-name respects the destination's protos.
                if netname == "net"
                    && net.kind == NetworkKind::Ip
                    && !dest_protos.is_empty()
                    && !dest_protos.iter().any(|p| p == &net.proto)
                    && !is_ip_literal(h)
                {
                    continue;
                }
                match net.kind {
                    NetworkKind::Ip => {
                        let addrs = self.ip_addresses(h, entry.as_ref());
                        for addr in addrs {
                            let line = match self.service_port(&net.proto, svc) {
                                Some(port) => format!(
                                    "{}/{}/clone {}!{}",
                                    self.cfg.mount_prefix, net.proto, addr, port
                                ),
                                None if svc.is_empty() => format!(
                                    "{}/{}/clone {}",
                                    self.cfg.mount_prefix, net.proto, addr
                                ),
                                None => continue, // service unknown on this proto
                            };
                            lines.push(line);
                        }
                    }
                    NetworkKind::Datakit => {
                        let dk_addr = if h.contains('/') {
                            Some(h.clone())
                        } else {
                            entry.as_ref().and_then(|e| e.get("dk").map(String::from))
                        };
                        if let Some(addr) = dk_addr {
                            let line = if svc.is_empty() {
                                format!("{}/{}/clone {}", self.cfg.mount_prefix, net.proto, addr)
                            } else {
                                format!(
                                    "{}/{}/clone {}!{}",
                                    self.cfg.mount_prefix, net.proto, addr, svc
                                )
                            };
                            lines.push(line);
                        }
                    }
                }
            }
        }
        if lines.is_empty() {
            return Err(NineError::new(format!(
                "cannot translate address: {query}"
            )));
        }
        Ok(lines)
    }

    /// All IP addresses for a host name: literals pass through, domain
    /// names consult DNS first and fall back to the database ("If no DNS
    /// is reachable, CS relies on its own tables").
    fn ip_addresses(&self, host: &str, entry: Option<&plan9_ndb::Entry>) -> Vec<String> {
        if is_ip_literal(host) {
            return vec![host.to_string()];
        }
        if looks_like_domain(host) {
            if let Some(dns) = &self.dns {
                if let Ok(recs) = dns.resolve(host, "ip") {
                    let addrs: Vec<String> =
                        recs.into_iter().filter(|(t, _)| t == "ip").map(|(_, v)| v).collect();
                    if !addrs.is_empty() {
                        return addrs;
                    }
                }
            }
        }
        entry
            .map(|e| e.all("ip").iter().map(|s| s.to_string()).collect())
            .unwrap_or_default()
    }

    fn service_port(&self, proto: &str, svc: &str) -> Option<u16> {
        if svc.is_empty() {
            return None;
        }
        self.db.lookup_service(proto, svc)
    }

    /// Builds the `/net/cs` file server around this translator.
    pub fn file_server(self: &Arc<Self>) -> Arc<QueryFs> {
        let cs = Arc::clone(self);
        QueryFs::new("cs", "cs", Box::new(move |query| cs.translate(query)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A database shaped like the paper's examples.
    const NDB: &str = "\
ipnet=mh-astro-net ip=135.104.0.0
\tauth=p9auth auth=musca
sys=helix dom=helix.research.bell-labs.com ip=135.104.9.31 dk=nj/astro/helix proto=il
sys=p9auth ip=135.104.9.34 dk=nj/astro/p9auth proto=il
sys=musca ip=135.104.9.6 dk=nj/astro/musca proto=il
sys=spindle dom=research.bell-labs.com ip=135.104.117.5 ip=129.11.4.1 dk=nj/astro/research proto=il proto=tcp
sys=gnot ip=135.104.9.40
il=9fs port=17008
il=rexauth port=17021
tcp=login port=513
tcp=echo port=7
tcp=9fs port=564
";

    fn cs() -> Arc<CsServer> {
        let db = Arc::new(Db::from_texts(&[NDB]));
        CsServer::new(CsConfig::standard("gnot"), db, None)
    }

    #[test]
    fn paper_query_net_helix_9fs() {
        // % ndb/csquery
        // > net!helix!9fs
        // /net/il/clone 135.104.9.31!17008
        // /net/dk/clone nj/astro/helix!9fs
        let lines = cs().translate("net!helix!9fs").unwrap();
        assert_eq!(
            lines,
            vec![
                "/net/il/clone 135.104.9.31!17008",
                "/net/dk/clone nj/astro/helix!9fs",
            ]
        );
    }

    #[test]
    fn paper_query_auth_metaname() {
        // > net!$auth!rexauth — two auth servers, il and dk each.
        let lines = cs().translate("net!$auth!rexauth").unwrap();
        assert_eq!(
            lines,
            vec![
                "/net/il/clone 135.104.9.34!17021",
                "/net/dk/clone nj/astro/p9auth!rexauth",
                "/net/il/clone 135.104.9.6!17021",
                "/net/dk/clone nj/astro/musca!rexauth",
            ]
        );
    }

    #[test]
    fn explicit_network_with_address_literal() {
        // tcp!135.104.117.5!513 — no database needed.
        let lines = cs().translate("tcp!135.104.117.5!513").unwrap();
        assert_eq!(lines, vec!["/net/tcp/clone 135.104.117.5!513"]);
    }

    #[test]
    fn dial_string_equivalence_like_section_5() {
        // tcp!research.bell-labs.com!login resolves the same machine.
        let by_name = cs().translate("tcp!research.bell-labs.com!login").unwrap();
        assert_eq!(
            by_name,
            vec![
                "/net/tcp/clone 135.104.117.5!513",
                "/net/tcp/clone 129.11.4.1!513",
            ]
        );
    }

    #[test]
    fn net_tries_all_addresses_and_networks() {
        // net!research.bell-labs.com!login (§5.1): datakit and both IPs.
        let lines = cs().translate("net!research.bell-labs.com!login").unwrap();
        // Our preference order puts il first; spindle supports il and
        // tcp. No il service "login" exists, so il yields nothing.
        assert_eq!(
            lines,
            vec![
                "/net/tcp/clone 135.104.117.5!513",
                "/net/tcp/clone 129.11.4.1!513",
                "/net/dk/clone nj/astro/research!login",
            ]
        );
    }

    #[test]
    fn unknown_network_rejected() {
        let err = cs().translate("xns!helix!9fs").unwrap_err();
        assert!(err.0.contains("unknown network"), "{err}");
    }

    #[test]
    fn unknown_host_rejected() {
        let err = cs().translate("net!plutonium!9fs").unwrap_err();
        assert!(err.0.contains("cannot translate"), "{err}");
    }

    #[test]
    fn missing_attr_rejected() {
        let err = cs().translate("net!$bogus!9fs").unwrap_err();
        assert!(err.0.contains("no attribute"), "{err}");
    }

    #[test]
    fn numeric_service_passes_through() {
        let lines = cs().translate("il!helix!17010").unwrap();
        assert_eq!(lines, vec!["/net/il/clone 135.104.9.31!17010"]);
    }

    #[test]
    fn dns_consulted_before_database() {
        let db = Arc::new(Db::from_texts(&[NDB]));
        let internet = crate::dns::paper_internet();
        // DNS disagrees with ndb on purpose.
        internet.register("weird.research.bell-labs.com", "ip", "10.9.9.9");
        let dns = DnsServer::new(internet);
        let cs = CsServer::new(CsConfig::standard("gnot"), db, Some(dns));
        let lines = cs.translate("tcp!weird.research.bell-labs.com!echo").unwrap();
        assert_eq!(lines, vec!["/net/tcp/clone 10.9.9.9!7"]);
    }

    #[test]
    fn star_host_for_announcements() {
        let lines = cs().translate("tcp!*!echo").unwrap();
        assert_eq!(lines, vec!["/net/tcp/clone *!7"]);
        let lines = cs().translate("net!*!9fs").unwrap();
        assert_eq!(
            lines,
            vec![
                "/net/il/clone *!17008",
                "/net/tcp/clone *!564",
                "/net/dk/clone *!9fs",
            ]
        );
    }

    #[test]
    fn file_interface_round_trip() {
        use plan9_ninep::procfs::{OpenMode, ProcFs};
        let fs = cs().file_server();
        let root = fs.attach("u", "").unwrap();
        let f = fs.walk(&root, "cs").unwrap();
        let f = fs.open(&f, OpenMode::RDWR).unwrap();
        fs.write(&f, 0, b"net!helix!9fs").unwrap();
        assert_eq!(
            fs.read(&f, 0, 256).unwrap(),
            b"/net/il/clone 135.104.9.31!17008"
        );
        assert_eq!(
            fs.read(&f, 0, 256).unwrap(),
            b"/net/dk/clone nj/astro/helix!9fs"
        );
    }
}
