//! A simulated Internet domain name hierarchy.
//!
//! The 1993 Internet is not available, so the DNS server resolves
//! against [`SimInternet`]: a registry of zones, each holding resource
//! records and delegations. The resolver in [`crate::dns`] performs a
//! real recursive walk — root zone, then down one delegation at a time —
//! so caching and query counting behave like the paper's DNS.

use plan9_support::sync::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A resource record: (type, value), e.g. `("ip", "135.104.9.31")`.
pub type Record = (String, String);

/// One zone: authoritative records plus delegated child zones.
#[derive(Default)]
struct Zone {
    /// Records by fully qualified name.
    records: HashMap<String, Vec<Record>>,
    /// Child zone suffixes delegated away from this zone.
    delegations: Vec<String>,
}

/// The simulated global DNS: zones by suffix (`""` is the root).
pub struct SimInternet {
    zones: RwLock<HashMap<String, Zone>>,
    /// How many zone queries resolvers have issued (each is one
    /// simulated network round trip).
    pub zone_queries: AtomicU64,
}

impl SimInternet {
    /// Creates an empty hierarchy with only a root zone.
    pub fn new() -> Arc<SimInternet> {
        let mut zones = HashMap::new();
        zones.insert(String::new(), Zone::default());
        Arc::new(SimInternet {
            zones: RwLock::new(zones),
            zone_queries: AtomicU64::new(0),
        })
    }

    /// Creates a zone for `suffix` (e.g. `"com"`, `"bell-labs.com"`),
    /// delegating it from its nearest existing ancestor.
    pub fn add_zone(&self, suffix: &str) {
        let mut zones = self.zones.write();
        if zones.contains_key(suffix) {
            return;
        }
        // Find nearest ancestor zone.
        let mut ancestor = String::new();
        for (z, _) in zones.iter() {
            if suffix_contains(z, suffix) && z.len() > ancestor.len() {
                ancestor = z.clone();
            }
        }
        zones
            .get_mut(&ancestor)
            .expect("ancestor exists")
            .delegations
            .push(suffix.to_string());
        zones.insert(suffix.to_string(), Zone::default());
    }

    /// Registers a record in the zone authoritative for `name`.
    pub fn register(&self, name: &str, rtype: &str, value: &str) {
        let zone_key = self.authoritative_zone(name);
        let mut zones = self.zones.write();
        zones
            .get_mut(&zone_key)
            .expect("zone exists")
            .records
            .entry(name.to_string())
            .or_default()
            .push((rtype.to_string(), value.to_string()));
    }

    /// The suffix of the zone authoritative for `name`.
    pub fn authoritative_zone(&self, name: &str) -> String {
        let zones = self.zones.read();
        let mut best = String::new();
        for (z, _) in zones.iter() {
            if suffix_contains(z, name) && z.len() >= best.len() && !z.is_empty() {
                best = z.clone();
            }
        }
        best
    }

    /// One resolver step: ask the zone `zone_suffix` about `name`.
    ///
    /// Returns `Ok(records)` if the zone is authoritative and has them,
    /// `Err(delegation)` if the zone delegates toward the name, and
    /// `Ok(empty)` if the name is simply absent.
    pub fn query_zone(
        &self,
        zone_suffix: &str,
        name: &str,
    ) -> std::result::Result<Vec<Record>, String> {
        self.zone_queries.fetch_add(1, Ordering::Relaxed);
        let zones = self.zones.read();
        let Some(zone) = zones.get(zone_suffix) else {
            return Ok(Vec::new());
        };
        // Does a delegation lead closer to the name?
        for d in &zone.delegations {
            if suffix_contains(d, name) {
                return Err(d.clone());
            }
        }
        Ok(zone.records.get(name).cloned().unwrap_or_default())
    }
}

/// Whether `zone` is a suffix (on label boundaries) of `name`.
pub fn suffix_contains(zone: &str, name: &str) -> bool {
    if zone.is_empty() {
        return true;
    }
    name == zone || name.ends_with(&format!(".{zone}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_logic() {
        assert!(suffix_contains("", "anything.at.all"));
        assert!(suffix_contains("com", "bell-labs.com"));
        assert!(suffix_contains("bell-labs.com", "helix.research.bell-labs.com"));
        assert!(!suffix_contains("labs.com", "bell-labs.com"));
        assert!(!suffix_contains("edu", "bell-labs.com"));
    }

    #[test]
    fn delegation_walk_shape() {
        let net = SimInternet::new();
        net.add_zone("com");
        net.add_zone("bell-labs.com");
        net.register("helix.research.bell-labs.com", "ip", "135.104.9.31");
        // Root delegates to com.
        assert_eq!(
            net.query_zone("", "helix.research.bell-labs.com"),
            Err("com".to_string())
        );
        // com delegates to bell-labs.com.
        assert_eq!(
            net.query_zone("com", "helix.research.bell-labs.com"),
            Err("bell-labs.com".to_string())
        );
        // bell-labs.com answers.
        let recs = net
            .query_zone("bell-labs.com", "helix.research.bell-labs.com")
            .unwrap();
        assert_eq!(recs, vec![("ip".to_string(), "135.104.9.31".to_string())]);
    }

    #[test]
    fn absent_name_is_empty_not_error() {
        let net = SimInternet::new();
        net.add_zone("edu");
        assert_eq!(net.query_zone("edu", "nowhere.edu"), Ok(Vec::new()));
    }

    #[test]
    fn zone_added_out_of_order_reparents() {
        let net = SimInternet::new();
        net.add_zone("research.bell-labs.com");
        net.register("x.research.bell-labs.com", "ip", "1.2.3.4");
        // Root delegates directly to the deep zone when no intermediate
        // exists.
        assert_eq!(
            net.query_zone("", "x.research.bell-labs.com"),
            Err("research.bell-labs.com".to_string())
        );
    }
}
