//! The domain name server: a user-level process serving `/net/dns`.
//!
//! "A client writes a request of the form `domain-name type` ... DNS
//! performs a recursive query through the Internet domain name system
//! producing one line per resource record found. The client reads
//! /net/dns to retrieve the records. Like other domain name servers, DNS
//! caches information learned from the network."

use crate::qfile::QueryFs;
use crate::zones::{Record, SimInternet};
use plan9_support::sync::Mutex;
use plan9_ninep::{NineError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long cached answers live.
const CACHE_TTL: Duration = Duration::from_secs(300);

/// Bound on delegation depth (malformed hierarchies).
const MAX_DEPTH: usize = 16;

struct CacheEntry {
    records: Vec<Record>,
    at: Instant,
}

/// The resolver with its cache; shared by every listener process.
pub struct DnsServer {
    internet: Arc<SimInternet>,
    cache: Mutex<HashMap<String, CacheEntry>>,
    /// Queries answered from cache.
    pub cache_hits: AtomicU64,
    /// Queries that walked the hierarchy.
    pub recursions: AtomicU64,
}

impl DnsServer {
    /// Creates a resolver over the simulated Internet.
    pub fn new(internet: Arc<SimInternet>) -> Arc<DnsServer> {
        Arc::new(DnsServer {
            internet,
            cache: Mutex::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            recursions: AtomicU64::new(0),
        })
    }

    /// Resolves `name`, returning every record (filtered by `rtype`
    /// unless it is `any`).
    pub fn resolve(&self, name: &str, rtype: &str) -> Result<Vec<Record>> {
        let records = self.resolve_all(name, 0)?;
        Ok(records
            .into_iter()
            .filter(|(t, _)| rtype == "any" || t == rtype)
            .collect())
    }

    fn resolve_all(&self, name: &str, depth: usize) -> Result<Vec<Record>> {
        if depth > 4 {
            return Err(NineError::new("cname loop"));
        }
        {
            let cache = self.cache.lock();
            if let Some(e) = cache.get(name) {
                if plan9_support::time::now().saturating_duration_since(e.at) < CACHE_TTL {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(e.records.clone());
                }
            }
        }
        self.recursions.fetch_add(1, Ordering::Relaxed);
        // Recursive walk from the root, following delegations.
        let mut zone = String::new();
        let mut records = Vec::new();
        for _ in 0..MAX_DEPTH {
            match self.internet.query_zone(&zone, name) {
                Ok(recs) => {
                    records = recs;
                    break;
                }
                Err(delegation) => zone = delegation,
            }
        }
        // Chase CNAMEs.
        let mut out = Vec::new();
        for (t, v) in &records {
            if t == "cname" {
                out.push((t.clone(), v.clone()));
                out.extend(self.resolve_all(v, depth + 1)?);
            } else {
                out.push((t.clone(), v.clone()));
            }
        }
        self.cache.lock().insert(
            name.to_string(),
            CacheEntry {
                records: out.clone(),
                at: plan9_support::time::now(),
            },
        );
        Ok(out)
    }

    /// Builds the `/net/dns` file server around this resolver.
    pub fn file_server(self: &Arc<Self>) -> Arc<QueryFs> {
        let dns = Arc::clone(self);
        QueryFs::new(
            "dns",
            "dns",
            Box::new(move |query| {
                let mut parts = query.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| NineError::new("empty dns request"))?;
                let rtype = parts.next().unwrap_or("ip");
                let records = dns.resolve(name, rtype)?;
                if records.is_empty() {
                    return Err(NineError::new(format!("dns: no answer for {name}")));
                }
                Ok(records
                    .into_iter()
                    .map(|(t, v)| format!("{name} {t} {v}"))
                    .collect())
            }),
        )
    }
}

/// Populates a [`SimInternet`] with the zones and hosts of the paper's
/// world, for examples and tests.
pub fn paper_internet() -> Arc<SimInternet> {
    let net = SimInternet::new();
    for zone in ["com", "edu", "bell-labs.com", "research.bell-labs.com", "mit.edu"] {
        net.add_zone(zone);
    }
    net.register("helix.research.bell-labs.com", "ip", "135.104.9.31");
    net.register("bootes.research.bell-labs.com", "ip", "135.104.9.2");
    net.register("research.bell-labs.com", "ip", "135.104.117.5");
    net.register("ai.mit.edu", "ip", "128.52.32.80");
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use plan9_ninep::procfs::{OpenMode, ProcFs};

    #[test]
    fn recursive_resolution_walks_zones() {
        let net = paper_internet();
        let dns = DnsServer::new(Arc::clone(&net));
        let recs = dns.resolve("helix.research.bell-labs.com", "ip").unwrap();
        assert_eq!(recs[0].1, "135.104.9.31");
        // Root → com → bell-labs.com → research.bell-labs.com: several
        // zone queries.
        assert!(net.zone_queries.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn cache_prevents_repeat_walks() {
        let net = paper_internet();
        let dns = DnsServer::new(Arc::clone(&net));
        dns.resolve("ai.mit.edu", "ip").unwrap();
        let q1 = net.zone_queries.load(Ordering::Relaxed);
        dns.resolve("ai.mit.edu", "ip").unwrap();
        assert_eq!(net.zone_queries.load(Ordering::Relaxed), q1);
        assert_eq!(dns.cache_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cname_chased() {
        let net = paper_internet();
        net.register("www.bell-labs.com", "cname", "research.bell-labs.com");
        let dns = DnsServer::new(net);
        let recs = dns.resolve("www.bell-labs.com", "ip").unwrap();
        assert_eq!(recs, vec![("ip".into(), "135.104.117.5".into())]);
    }

    #[test]
    fn file_interface_matches_paper() {
        let net = paper_internet();
        let dns = DnsServer::new(net);
        let fs = dns.file_server();
        let root = fs.attach("u", "").unwrap();
        let f = fs.walk(&root, "dns").unwrap();
        let f = fs.open(&f, OpenMode::RDWR).unwrap();
        fs.write(&f, 0, b"ai.mit.edu ip").unwrap();
        let line = fs.read(&f, 0, 256).unwrap();
        assert_eq!(line, b"ai.mit.edu ip 128.52.32.80");
        assert_eq!(fs.read(&f, 0, 256).unwrap(), b"");
    }

    #[test]
    fn missing_name_is_an_error() {
        let net = paper_internet();
        let dns = DnsServer::new(net);
        let fs = dns.file_server();
        let root = fs.attach("u", "").unwrap();
        let f = fs.walk(&root, "dns").unwrap();
        let f = fs.open(&f, OpenMode::RDWR).unwrap();
        let err = fs.write(&f, 0, b"no.such.host ip").unwrap_err();
        assert!(err.0.contains("no answer"), "{err}");
    }

    #[test]
    fn concurrent_resolvers_share_cache() {
        let net = paper_internet();
        let dns = DnsServer::new(Arc::clone(&net));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let dns = Arc::clone(&dns);
            handles.push(std::thread::spawn(move || {
                dns.resolve("bootes.research.bell-labs.com", "ip").unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap()[0].1, "135.104.9.2");
        }
    }
}
