//! Integration tests for the discrete-event virtual clock.
//!
//! The clock is process-global, so these live in their own test binary
//! and serialize on `serial()`: two tests installing clocks
//! concurrently would trample each other.

use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};
use std::time::Duration;

use plan9_support::sync::{Condvar, Mutex};
use plan9_support::{chan, time, vtime};

fn serial() -> StdMutexGuard<'static, ()> {
    static GATE: StdMutex<()> = StdMutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn sleep_advances_virtual_time_instantly() {
    let _g = serial();
    let wall = time::real_now();
    let vt = vtime::enter();
    time::sleep(Duration::from_secs(3600));
    assert!(vt.clock().elapsed() >= Duration::from_secs(3600));
    assert_eq!(vt.clock().advances(), 1);
    drop(vt);
    // An hour of virtual sleep takes well under a second of real time.
    assert!(wall.elapsed() < Duration::from_secs(1));
}

#[test]
fn sleepers_wake_in_deadline_order() {
    let _g = serial();
    let vt = vtime::enter();
    let order = Arc::new(StdMutex::new(Vec::new()));
    let mut handles = Vec::new();
    // Spawn in shuffled duration order; wake order must follow the
    // deadlines, not the spawn order.
    for (tag, ms) in [("c", 30u64), ("a", 10), ("d", 40), ("b", 20)] {
        let order = Arc::clone(&order);
        handles.push(
            vtime::kproc(&format!("sleeper-{tag}"), move || {
                time::sleep(Duration::from_millis(ms));
                order.lock().unwrap().push(tag);
            })
            .unwrap(),
        );
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*order.lock().unwrap(), vec!["a", "b", "c", "d"]);
    assert_eq!(vt.clock().elapsed(), Duration::from_millis(40));
    drop(vt);
}

#[test]
fn equal_deadlines_break_ties_by_registration_order() {
    let _g = serial();
    let vt = vtime::enter();
    let order = Arc::new(StdMutex::new(Vec::new()));
    // Spawned back to back: the scheduler admits kprocs in spawn
    // order no matter how the OS staggers the thread starts, so their
    // timer registration order is the spawn order.
    let mut handles = Vec::new();
    for tag in ["first", "second", "third"] {
        let order = Arc::clone(&order);
        let h = vtime::kproc(tag, move || {
            time::sleep(Duration::from_millis(5));
            order.lock().unwrap().push(tag);
        })
        .unwrap();
        handles.push(h);
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*order.lock().unwrap(), vec!["first", "second", "third"]);
    drop(vt);
}

#[test]
fn condvar_timed_wait_becomes_virtual_timer() {
    let _g = serial();
    let vt = vtime::enter();
    let m = Mutex::new(false);
    let cv = Condvar::new();
    let mut g = m.lock();
    let before = time::now();
    let r = cv.wait_until(&mut g, before + Duration::from_millis(250));
    assert!(r.timed_out());
    assert_eq!(time::now() - before, Duration::from_millis(250));
    drop(g);
    drop(vt);
}

#[test]
fn condvar_past_deadline_returns_immediately() {
    let _g = serial();
    let vt = vtime::enter();
    let m = Mutex::new(());
    let cv = Condvar::new();
    let mut g = m.lock();
    let r = cv.wait_until(&mut g, time::now() - Duration::from_millis(1));
    assert!(r.timed_out());
    assert_eq!(vt.clock().advances(), 0);
    drop(g);
    drop(vt);
}

#[test]
fn notify_beats_timer_and_leaves_time_still() {
    let _g = serial();
    let vt = vtime::enter();
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let (started_tx, started_rx) = chan::unbounded::<u8>();
    let p2 = Arc::clone(&pair);
    let h = vtime::kproc("waiter", move || {
        let (m, cv) = &*p2;
        let mut ready = m.lock();
        // Announce under the lock: the notifier cannot race past the
        // flag check before this thread is parked.
        started_tx.send(1).unwrap();
        let mut timed_out = false;
        while !*ready {
            if cv
                .wait_until(&mut ready, time::now() + Duration::from_secs(60))
                .timed_out()
            {
                timed_out = true;
                break;
            }
        }
        timed_out
    })
    .unwrap();
    // Parking here hands the CPU to the waiter; once it parks in turn,
    // notify it before its 60s timer — the notify must win and the
    // clock must never advance.
    started_rx.recv().unwrap();
    {
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
    }
    let timed_out = h.join().unwrap();
    assert!(!timed_out);
    assert_eq!(vt.clock().elapsed(), Duration::ZERO);
    drop(vt);
}

#[test]
fn chan_recv_timeout_rides_the_virtual_clock() {
    let _g = serial();
    let vt = vtime::enter();
    let (tx, rx) = chan::unbounded::<u8>();
    let before = time::now();
    assert!(matches!(
        rx.recv_timeout(Duration::from_millis(500)),
        Err(chan::RecvTimeoutError::Timeout)
    ));
    assert_eq!(time::now() - before, Duration::from_millis(500));
    // A real send still gets through without advancing time.
    let tx2 = tx.clone();
    let h = vtime::kproc("sender", move || tx2.send(9).unwrap()).unwrap();
    assert_eq!(rx.recv_timeout(Duration::from_secs(60)), Ok(9));
    h.join().unwrap();
    drop(tx);
    drop(vt);
}

#[test]
fn ticker_and_worker_interleave_deterministically() {
    let _g = serial();
    let vt = vtime::enter();
    // A 5ms ticker (like IL's timer thread) and a 12ms sleeper: the
    // clock must interleave their wakeups in deadline order.
    let log = Arc::new(StdMutex::new(Vec::new()));
    let l1 = Arc::clone(&log);
    let ticker = vtime::kproc("ticker", move || {
        for i in 0..5 {
            time::sleep(Duration::from_millis(5));
            l1.lock().unwrap().push(format!("tick{i}"));
        }
    })
    .unwrap();
    let l2 = Arc::clone(&log);
    let worker = vtime::kproc("worker", move || {
        time::sleep(Duration::from_millis(12));
        l2.lock().unwrap().push("work".to_string());
    })
    .unwrap();
    ticker.join().unwrap();
    worker.join().unwrap();
    assert_eq!(
        *log.lock().unwrap(),
        vec!["tick0", "tick1", "work", "tick2", "tick3", "tick4"]
    );
    assert_eq!(vt.clock().elapsed(), Duration::from_millis(25));
    drop(vt);
}

#[test]
fn census_counts_registered_threads() {
    let _g = serial();
    let vt = vtime::enter();
    let (registered, parked) = vt.clock().census();
    assert_eq!((registered, parked), (1, 0)); // just the installer
    // The rendezvous must ride the virtual clock (an OS barrier would
    // be invisible to the scheduler): the child announces itself, then
    // parks until released.
    let (started_tx, started_rx) = chan::unbounded::<u8>();
    let (go_tx, go_rx) = chan::unbounded::<u8>();
    let h = vtime::kproc("census-child", move || {
        started_tx.send(1).unwrap();
        let _ = go_rx.recv();
    })
    .unwrap();
    started_rx.recv().unwrap();
    assert_eq!(vt.clock().census().0, 2);
    go_tx.send(1).unwrap();
    h.join().unwrap();
    assert_eq!(vt.clock().census().0, 1);
    drop(vt);
}

#[test]
fn teardown_wakes_stranded_waiters() {
    let _g = serial();
    let vt = vtime::enter();
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    // An *unregistered* thread (plain spawn) waits on a virtual timer;
    // dropping the clock must wake it rather than strand it.
    let h = std::thread::spawn(move || {
        let (_tx, rx) = chan::unbounded::<u8>();
        let r = rx.recv_timeout(Duration::from_secs(3600));
        done_tx.send(r).unwrap();
    });
    std::thread::sleep(Duration::from_millis(20));
    drop(vt);
    let r = done_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("waiter stranded after clock teardown");
    assert!(matches!(r, Err(chan::RecvTimeoutError::Timeout)));
    h.join().unwrap();
}

#[test]
fn real_mode_untouched_by_module_presence() {
    let _g = serial();
    assert!(!vtime::is_virtual());
    let t0 = time::now();
    time::sleep(Duration::from_millis(5));
    assert!(time::now() - t0 >= Duration::from_millis(5));
}
