//! The contracts netsim and streams sit on: RNG streams are a pure
//! function of the seed, and channels neither lose nor duplicate
//! messages under concurrent producers.

use plan9_support::chan::{bounded, unbounded, RecvError};
use plan9_support::rng::SmallRng;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn same_seed_same_stream() {
    let mut a = SmallRng::seed_from_u64(0x9fc0de);
    let mut b = SmallRng::seed_from_u64(0x9fc0de);
    for _ in 0..10_000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    // Every derived draw is deterministic too, not just the raw stream.
    let mut a = SmallRng::seed_from_u64(1993);
    let mut b = SmallRng::seed_from_u64(1993);
    for _ in 0..1_000 {
        assert_eq!(a.gen_bool(0.05), b.gen_bool(0.05));
        assert_eq!(a.gen_range(0..1500usize), b.gen_range(0..1500usize));
        assert_eq!(a.gen_range(0.0f64..0.08), b.gen_range(0.0f64..0.08));
    }
}

#[test]
fn different_seeds_diverge() {
    let mut a = SmallRng::seed_from_u64(1);
    let mut b = SmallRng::seed_from_u64(2);
    let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
    assert_eq!(same, 0, "seeds 1 and 2 produced colliding draws");
}

#[test]
fn rng_stream_is_pinned_across_builds() {
    // netsim's loss/delay decisions must replay identically on every
    // platform and toolchain: pin the first draws of a known seed.
    let mut r = SmallRng::seed_from_u64(0);
    let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
    assert_eq!(
        first,
        [
            0xe220a8397b1dcdaf,
            0x6e789e6aa1b965f4,
            0x06c45d188009454f,
            0xf88bb8a8724c81ec,
        ]
    );
}

#[test]
fn concurrent_producers_lose_nothing() {
    const PRODUCERS: u64 = 8;
    const PER_PRODUCER: u64 = 2_000;
    let (tx, rx) = bounded::<u64>(16);
    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                tx.send(p * PER_PRODUCER + i).unwrap();
            }
        }));
    }
    drop(tx);
    let mut seen = HashSet::new();
    while let Ok(v) = rx.recv() {
        assert!(seen.insert(v), "duplicate delivery of {v}");
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(seen.len() as u64, PRODUCERS * PER_PRODUCER);
}

#[test]
fn per_sender_fifo_is_preserved() {
    let (tx, rx) = unbounded::<(u8, u32)>();
    let mut handles = Vec::new();
    for p in 0..4u8 {
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..1_000u32 {
                tx.send((p, i)).unwrap();
            }
        }));
    }
    drop(tx);
    let mut next = [0u32; 4];
    while let Ok((p, i)) = rx.recv() {
        assert_eq!(i, next[p as usize], "sender {p} reordered");
        next[p as usize] += 1;
    }
    assert_eq!(next, [1_000; 4]);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn close_wakes_blocked_receivers() {
    let (tx, rx) = unbounded::<u8>();
    let rx = Arc::new(rx);
    let waiter = {
        let rx = Arc::clone(&rx);
        std::thread::spawn(move || rx.recv())
    };
    std::thread::sleep(Duration::from_millis(20));
    drop(tx);
    assert_eq!(waiter.join().unwrap(), Err(RecvError));
}

#[test]
fn close_wakes_blocked_senders() {
    let (tx, rx) = bounded::<u8>(1);
    tx.send(1).unwrap();
    let blocked = std::thread::spawn(move || tx.send(2));
    std::thread::sleep(Duration::from_millis(20));
    drop(rx);
    assert!(blocked.join().unwrap().is_err());
}

#[test]
fn shared_consumers_partition_the_stream() {
    let (tx, rx) = unbounded::<u32>();
    let rx2 = rx.clone();
    let consumer = |rx: plan9_support::chan::Receiver<u32>| {
        std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        })
    };
    let a = consumer(rx);
    let b = consumer(rx2);
    for i in 0..10_000 {
        tx.send(i).unwrap();
    }
    drop(tx);
    let mut all = a.join().unwrap();
    all.extend(b.join().unwrap());
    all.sort_unstable();
    assert_eq!(all, (0..10_000).collect::<Vec<_>>());
}
