//! End-to-end lockdep: a deliberate A→B / B→A inversion across two
//! threads must panic naming both lock classes — on the *first* run
//! that exhibits both orders, whether or not the interleaving would
//! have deadlocked.
//!
//! Everything here is debug-only because lockdep itself is compiled
//! out of release builds (a release `cargo test` compiles this file to
//! nothing, which is itself the off-path guarantee).

#![cfg(debug_assertions)]

use plan9_support::sync::Mutex;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

#[test]
fn two_thread_inversion_panics_naming_both_classes() {
    let a = Arc::new(Mutex::named(0u32, "invtest.mux"));
    let b = Arc::new(Mutex::named(0u32, "invtest.queue"));

    // Thread 1 establishes mux -> queue and reports when done.
    let (t1a, t1b) = (Arc::clone(&a), Arc::clone(&b));
    let (tx, rx) = mpsc::channel();
    let t1 = thread::Builder::new()
        .name("invtest-forward".into())
        .spawn(move || {
            let ga = t1a.lock();
            let gb = t1b.lock();
            drop((ga, gb));
            tx.send(()).unwrap();
        })
        .unwrap();
    rx.recv().unwrap();
    t1.join().unwrap();

    // Thread 2 takes queue -> mux: lockdep must refuse the second
    // acquisition even though no deadlock actually occurs here.
    let (t2a, t2b) = (Arc::clone(&a), Arc::clone(&b));
    let panic = thread::Builder::new()
        .name("invtest-reverse".into())
        .spawn(move || {
            let gb = t2b.lock();
            let ga = t2a.lock();
            drop((gb, ga));
        })
        .unwrap()
        .join()
        .expect_err("reverse order must panic under lockdep");

    let msg = panic
        .downcast_ref::<String>()
        .expect("lockdep panics with a String payload");
    assert!(msg.contains("invtest.mux"), "missing class A name: {msg}");
    assert!(msg.contains("invtest.queue"), "missing class B name: {msg}");
    assert!(msg.contains("lock-order inversion"), "{msg}");
    // The report carries both acquisition sites: the recorded forward
    // edge and the offending reverse acquisition.
    assert!(msg.contains("invtest-forward"), "missing first thread: {msg}");
    assert!(msg.contains("invtest-reverse"), "missing second thread: {msg}");
}

#[test]
fn consistent_order_across_threads_is_silent() {
    let a = Arc::new(Mutex::named(0u32, "invtest.ok.outer"));
    let b = Arc::new(Mutex::named(0u32, "invtest.ok.inner"));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                for _ in 0..100 {
                    let mut ga = a.lock();
                    let mut gb = b.lock();
                    *ga += 1;
                    *gb += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*a.lock(), 400);
}

#[test]
fn condvar_wait_releases_class_while_parked() {
    use plan9_support::sync::Condvar;

    // While thread 1 is parked in wait() holding "cvtest.state", it
    // must NOT count as holding it: thread 2 takes state -> aux, then
    // the woken thread takes aux under the re-acquired state in the
    // same order, which is only consistent because wait() released.
    let state = Arc::new((Mutex::named(false, "cvtest.state"), Condvar::new()));
    let aux = Arc::new(Mutex::named(0u32, "cvtest.aux"));

    let (s2, x2) = (Arc::clone(&state), Arc::clone(&aux));
    let waiter = thread::spawn(move || {
        let (m, cv) = &*s2;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        *x2.lock() += 1; // state -> aux while holding the re-acquired lock
    });

    thread::sleep(std::time::Duration::from_millis(20));
    {
        let (m, cv) = &*state;
        let mut g = m.lock();
        *aux.lock() += 1; // establishes state -> aux
        *g = true;
        cv.notify_all();
    }
    waiter.join().unwrap();
    assert_eq!(*aux.lock(), 2);
}
