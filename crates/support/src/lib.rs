//! The in-tree support layer: the small slice of general-purpose
//! machinery the other crates need, owned here so the workspace builds
//! hermetically — offline, deterministically, on a clean checkout with
//! an empty registry cache.
//!
//! The paper's IL protocol is 847 lines *because* it owns its
//! primitives; in the same spirit this crate replaces every registry
//! dependency the workspace used to pull:
//!
//! | module    | replaces          | surface                                  |
//! |-----------|-------------------|------------------------------------------|
//! | [`sync`]  | `parking_lot`     | no-poison `Mutex`/`RwLock`/`Condvar`     |
//! | [`chan`]  | `crossbeam`       | bounded/unbounded mpmc channels          |
//! | [`rng`]   | `rand`            | seedable `SmallRng` (splitmix64)         |
//! | [`buf`]   | `bytes`           | `BytesMut`/`Bytes` byte-buffer surface   |
//! | [`check`] | `proptest`        | property-test runner + [`props!`] macro  |
//! | [`bench`] | `criterion`       | micro-bench harness, no-op-able          |
//! | [`json`]  | `serde_json`      | string quoting for hand-rolled emitters  |
//!
//! Three modules are boundaries rather than replacements: [`time`] is
//! the workspace's only legal clock read (wall *and* monotonic),
//! [`vtime`] is the pluggable discrete-event virtual clock behind it,
//! and [`lockdep`] (debug builds only) order-checks every lock built
//! with [`sync::Mutex::named`]. The `plan9-check` scanner enforces the
//! clock boundaries statically.
//!
//! Everything here sits on `std` alone.

pub mod bench;
pub mod buf;
pub mod chan;
pub mod check;
pub mod copysite;
pub mod json;
#[cfg(debug_assertions)]
pub mod lockdep;
pub mod pool;
pub mod rng;
pub mod sync;
pub mod time;
pub mod vtime;
pub mod wheel;

/// The runtime lock-order graph in the `/net/log/lockgraph` text
/// format (`class …` / `edge …` lines), or a one-line marker in
/// release builds, where lockdep is compiled out. This is the dump
/// `plan9-check --flow` cross-checks its static lock-order edges
/// against.
pub fn lockgraph_dump() -> String {
    #[cfg(debug_assertions)]
    {
        lockdep::graph_dump()
    }
    #[cfg(not(debug_assertions))]
    {
        "# lockdep: disabled (release build)\n".to_string()
    }
}
