//! Copy-site accounting: attributes every data-path memcpy/alloc to a
//! named site so the zero-copy work (ROADMAP item 3) burns down a
//! measured table instead of folklore.
//!
//! A [`Site`] is a `static` cell declared next to the copy it measures
//! (`static ENC: Site = Site::new("il.encode");`). Recording is two
//! relaxed atomic adds — cheap enough for the hot path. Sites register
//! themselves in a process-global table on first use, so the rendered
//! report only ever names sites that actually copied bytes.
//!
//! Like the pool/wheel counters, sites are process-global and
//! accumulate across every run in the process; deterministic reports
//! therefore use the snapshot/delta pattern: [`snapshot`] at run
//! start, [`CopySnapshot::delta`] at the end. Deltas rank by bytes
//! descending (name-tiebroken), which is exactly the "top copy sites"
//! table the bench gates consume.

use crate::sync::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static TABLE: Mutex<Vec<&'static Site>> = Mutex::named(Vec::new(), "copysite.table");

/// One named copy/alloc site on the data path.
pub struct Site {
    name: &'static str,
    bytes: AtomicU64,
    calls: AtomicU64,
    registered: AtomicBool,
}

impl Site {
    /// Declares a site; use in a `static` next to the copy it counts.
    pub const fn new(name: &'static str) -> Site {
        Site {
            name,
            bytes: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one copy of `n` bytes at this site.
    pub fn record(&'static self, n: usize) {
        self.bytes.fetch_add(n as u64, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            TABLE.lock().push(self);
        }
    }

    /// The site's name as shown in reports.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// One site's totals (or delta): bytes copied and call count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteCount {
    pub name: &'static str,
    pub bytes: u64,
    pub calls: u64,
}

/// A point-in-time capture of every registered site's totals.
#[derive(Clone, Debug, Default)]
pub struct CopySnapshot {
    counts: Vec<SiteCount>,
}

/// Captures all site totals now; compute deltas against this later.
pub fn snapshot() -> CopySnapshot {
    let sites = TABLE.lock().clone();
    let mut counts: Vec<SiteCount> = sites
        .iter()
        .map(|s| SiteCount {
            name: s.name,
            bytes: s.bytes.load(Ordering::Relaxed),
            calls: s.calls.load(Ordering::Relaxed),
        })
        .collect();
    counts.sort_by(|a, b| a.name.cmp(b.name));
    CopySnapshot { counts }
}

impl CopySnapshot {
    /// What each site copied since this snapshot, ranked by bytes
    /// descending (ties broken by name). Sites registered after the
    /// snapshot count from zero; zero-delta sites are dropped.
    pub fn delta(&self) -> Vec<SiteCount> {
        let now = snapshot();
        let mut out: Vec<SiteCount> = now
            .counts
            .into_iter()
            .filter_map(|mut c| {
                if let Ok(i) = self.counts.binary_search_by(|p| p.name.cmp(c.name)) {
                    c.bytes -= self.counts[i].bytes;
                    c.calls -= self.counts[i].calls;
                }
                (c.calls > 0).then_some(c)
            })
            .collect();
        out.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.name.cmp(b.name)));
        out
    }

    /// Renders the delta as `copy <site> bytes=<n> calls=<n>` lines
    /// plus a totals footer — byte-identical across same-seed runs.
    pub fn render_delta(&self) -> String {
        let delta = self.delta();
        let mut out = String::new();
        let (mut tb, mut tc) = (0u64, 0u64);
        for c in &delta {
            out.push_str(&format!(
                "copy {} bytes={} calls={}\n",
                c.name, c.bytes, c.calls
            ));
            tb += c.bytes;
            tc += c.calls;
        }
        out.push_str(&format!(
            "copy total sites={} bytes={} calls={}\n",
            delta.len(),
            tb,
            tc
        ));
        out
    }
}

/// Renders lifetime totals for every registered site, ranked by bytes
/// descending — the text behind `/net/log/copy`.
pub fn render() -> String {
    CopySnapshot::default().render_delta()
}

#[cfg(test)]
mod tests {
    use super::*;

    static SITE_A: Site = Site::new("test.copysite.a");
    static SITE_B: Site = Site::new("test.copysite.b");

    #[test]
    fn delta_ranks_by_bytes_and_ignores_prior_traffic() {
        SITE_A.record(10);
        let snap = snapshot();
        SITE_A.record(100);
        SITE_B.record(5000);
        SITE_B.record(1);
        let delta = snap.delta();
        let a = delta
            .iter()
            .find(|c| c.name == "test.copysite.a")
            .expect("site a");
        let b = delta
            .iter()
            .find(|c| c.name == "test.copysite.b")
            .expect("site b");
        assert_eq!((a.bytes, a.calls), (100, 1));
        assert_eq!((b.bytes, b.calls), (5001, 2));
        let ia = delta.iter().position(|c| c.name == a.name).unwrap();
        let ib = delta.iter().position(|c| c.name == b.name).unwrap();
        assert!(ib < ia, "larger byte total must rank first");
        let text = snap.render_delta();
        assert!(text.contains("copy test.copysite.b bytes=5001 calls=2\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn lifetime_render_names_sites() {
        SITE_A.record(1);
        assert!(render().contains("copy test.copysite.a bytes="));
    }
}
