//! The workspace's only clock.
//!
//! Kernel-path code must be deterministic and simulator-friendly, so
//! reading a clock is a support-layer privilege — `plan9-check`
//! enforces the boundary for both clocks:
//!
//! - **Monotonic time** comes from [`now`]/[`sleep`], which route
//!   through the pluggable clock in [`vtime`](crate::vtime): the real
//!   monotonic clock by default, the discrete-event virtual clock when
//!   one is installed. Kernel crates never call `Instant::now()` or
//!   `thread::sleep` directly.
//! - **Wall-clock time** (`SystemTime`) is read only here, for the rare
//!   wall-derived value (initial sequence numbers, file timestamps).
//!
//! [`real_now`] is the sanctioned escape hatch for measuring real
//! elapsed wall time (bench harnesses timing a virtual run).

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// The current monotonic instant on the kernel's clock: virtual when a
/// [`vtime`](crate::vtime) clock is installed, `Instant::now()`
/// otherwise. The real path costs one relaxed atomic load over a bare
/// `Instant::now()`.
pub fn now() -> Instant {
    match crate::vtime::active() {
        Some(clock) => clock.now(),
        None => Instant::now(),
    }
}

/// Sleeps for `d` on the kernel's clock: a virtual-timer park under
/// [`vtime`](crate::vtime), a real `thread::sleep` otherwise.
pub fn sleep(d: Duration) {
    if d.is_zero() {
        return;
    }
    match crate::vtime::active() {
        Some(clock) => clock.sleep(d),
        None => std::thread::sleep(d),
    }
}

/// The real monotonic clock, regardless of any installed virtual
/// clock: for measuring actual wall time (e.g. a bench harness timing
/// how fast a virtual sweep replays).
pub fn real_now() -> Instant {
    Instant::now()
}

/// Seconds since the Unix epoch (0 if the clock is before it).
pub fn unix_seconds() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_secs()
}

/// The sub-second nanoseconds of the current wall-clock time: the
/// traditional cheap entropy for a 4.4BSD-style initial sequence
/// number. Under a virtual clock this derives from virtual elapsed
/// time instead, so a seeded run draws the same sequence numbers every
/// replay.
pub fn unix_subsec_nanos() -> u32 {
    match crate::vtime::active() {
        Some(clock) => (clock.elapsed().as_nanos() % 1_000_000_000) as u32,
        None => SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .subsec_nanos(),
    }
}

/// Converts a `SystemTime` (e.g. a file's mtime) to whole seconds since
/// the Unix epoch (0 for times before it).
pub fn to_unix_seconds(t: SystemTime) -> u64 {
    t.duration_since(UNIX_EPOCH).unwrap_or_default().as_secs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_is_past_2020() {
        assert!(unix_seconds() > 1_577_836_800);
    }

    #[test]
    fn to_unix_seconds_of_now_matches() {
        let now = to_unix_seconds(SystemTime::now());
        let direct = unix_seconds();
        assert!(now.abs_diff(direct) <= 1);
    }

    #[test]
    fn subsec_nanos_in_range() {
        assert!(unix_subsec_nanos() < 1_000_000_000);
    }
}
