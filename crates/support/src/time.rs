//! The workspace's only wall clock.
//!
//! Kernel-path code must be deterministic and simulator-friendly, so
//! reading `SystemTime` is a support-layer privilege: everything else
//! uses monotonic `Instant`s for intervals and comes here for the rare
//! wall-clock-derived value (initial sequence numbers, file
//! timestamps). `plan9-check` enforces the boundary.

use std::time::{SystemTime, UNIX_EPOCH};

/// Seconds since the Unix epoch (0 if the clock is before it).
pub fn unix_seconds() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_secs()
}

/// The sub-second nanoseconds of the current wall-clock time: the
/// traditional cheap entropy for a 4.4BSD-style initial sequence
/// number.
pub fn unix_subsec_nanos() -> u32 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .subsec_nanos()
}

/// Converts a `SystemTime` (e.g. a file's mtime) to whole seconds since
/// the Unix epoch (0 for times before it).
pub fn to_unix_seconds(t: SystemTime) -> u64 {
    t.duration_since(UNIX_EPOCH).unwrap_or_default().as_secs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_is_past_2020() {
        assert!(unix_seconds() > 1_577_836_800);
    }

    #[test]
    fn to_unix_seconds_of_now_matches() {
        let now = to_unix_seconds(SystemTime::now());
        let direct = unix_seconds();
        assert!(now.abs_diff(direct) <= 1);
    }

    #[test]
    fn subsec_nanos_in_range() {
        assert!(unix_subsec_nanos() < 1_000_000_000);
    }
}
