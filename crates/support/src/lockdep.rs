//! Runtime lock-order checking ("lockdep"), debug builds only.
//!
//! The streams kernel is a chain of modules whose `put` routines call
//! the next module while their own state is locked — exactly the shape
//! where lock-order inversions hide: thread 1 takes queue A then queue
//! B, thread 2 takes B then A, and the system deadlocks only under the
//! right interleaving. This module catches the *order* violation on any
//! run, even one that never interleaves badly enough to deadlock.
//!
//! How it works, mirroring the Linux kernel's lockdep at toy scale:
//!
//! - Every [`sync::Mutex`](crate::sync::Mutex) or
//!   [`sync::RwLock`](crate::sync::RwLock) built with `named()` belongs
//!   to a **class**, keyed by the construction-site name (many
//!   instances — every stream queue, say — share one class). Classes
//!   are assigned lazily on first acquisition.
//! - Each thread keeps a stack of the classes it currently holds.
//! - A blocking acquisition of class `c` while holding `h` records the
//!   edge `h → c` in a global acquisition-order graph. Each edge keeps
//!   the backtrace and held-stack of the first time it was seen.
//! - If the reverse path `c → … → h` already exists, the new edge would
//!   close a cycle — a lock-order inversion. We panic immediately with
//!   both orders' lock names and both acquisition backtraces, instead
//!   of deadlocking some unlucky future run.
//!
//! Deliberate non-reports:
//!
//! - **Self edges** (`c` while holding `c`) are skipped: two *instances*
//!   of one class are routinely nested (queue A feeding queue B), and
//!   the class graph cannot tell instances apart.
//! - **`try_lock`** pushes the held stack but records no edge: a
//!   non-blocking acquisition cannot be the waiting half of a deadlock.
//! - **Unnamed locks** (plain `new()`) have no class and are invisible
//!   here; name a lock to put it under surveillance.
//!
//! The whole module — graph, held stacks, per-lock class fields — is
//! compiled only under `debug_assertions`. Release builds carry zero
//! bytes and zero instructions of it, the same off-path guarantee
//! nettrace makes.

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Index of a lock class in the global registry.
pub type ClassId = u32;

/// The per-lock handle: a construction-site name plus the lazily
/// assigned class id (0 = not yet registered). Embedded in every named
/// `sync::Mutex`/`sync::RwLock`; absent entirely in release builds.
pub struct LockClass {
    name: &'static str,
    id: AtomicU32,
}

impl LockClass {
    /// A class handle for `name`; registration happens on first use.
    pub const fn new(name: &'static str) -> LockClass {
        LockClass {
            name,
            id: AtomicU32::new(0),
        }
    }

    /// The class id, registering the name on first call.
    pub fn id(&self) -> ClassId {
        match self.id.load(Ordering::Relaxed) {
            0 => {
                let id = register(self.name);
                self.id.store(id, Ordering::Relaxed);
                id
            }
            id => id,
        }
    }
}

/// What we remember about the first acquisition that created an edge.
struct EdgeSite {
    thread: String,
    held_names: Vec<&'static str>,
    backtrace: String,
}

#[derive(Default)]
struct Graph {
    /// Class names, indexed by `ClassId - 1`.
    names: Vec<&'static str>,
    by_name: HashMap<&'static str, ClassId>,
    /// Blocking acquisitions per class, indexed by `ClassId - 1`. A
    /// zero after a full run marks a dead class — named but never
    /// locked — which checkflow reports.
    acquires: Vec<u64>,
    /// `from → to` acquisition-order edges with their first sighting.
    edges: HashMap<(ClassId, ClassId), EdgeSite>,
    /// Adjacency lists over the same edges, for reachability walks.
    adj: HashMap<ClassId, Vec<ClassId>>,
}

impl Graph {
    fn name(&self, c: ClassId) -> &'static str {
        self.names[(c - 1) as usize]
    }

    /// A path `from → … → to` over recorded edges, if one exists.
    fn path(&self, from: ClassId, to: ClassId) -> Option<Vec<ClassId>> {
        let mut parent: HashMap<ClassId, ClassId> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                let mut path = vec![to];
                let mut at = to;
                while at != from {
                    at = parent[&at];
                    path.push(at);
                }
                path.reverse();
                return Some(path);
            }
            for &next in self.adj.get(&n).map_or(&[][..], |v| v) {
                parent.entry(next).or_insert_with(|| {
                    queue.push_back(next);
                    n
                });
            }
        }
        None
    }
}

static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();

fn graph() -> std::sync::MutexGuard<'static, Graph> {
    GRAPH
        .get_or_init(Default::default)
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Classes this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<ClassId>> = const { RefCell::new(Vec::new()) };
}

fn register(name: &'static str) -> ClassId {
    let mut g = graph();
    if let Some(&id) = g.by_name.get(name) {
        return id;
    }
    g.names.push(name);
    g.acquires.push(0);
    let id = g.names.len() as ClassId;
    g.by_name.insert(name, id);
    id
}

/// Records a blocking acquisition of `c`: adds order edges from every
/// held class and panics if one would close a cycle. Call *before*
/// blocking on the underlying lock.
pub fn acquire(c: ClassId) {
    graph().acquires[(c - 1) as usize] += 1;
    let held: Vec<ClassId> = HELD.with(|h| h.borrow().clone());
    for &h in &held {
        if h == c {
            continue; // instances of one class may nest
        }
        let mut g = graph();
        if g.edges.contains_key(&(h, c)) {
            continue;
        }
        if let Some(path) = g.path(c, h) {
            let cycle: Vec<&str> = path.iter().map(|&n| g.name(n)).collect();
            let first_leg = g
                .edges
                .get(&(path[0], path[1]))
                .map(|e| {
                    format!(
                        "the \"{}\" -> \"{}\" order was established on thread {:?} \
                         (held: [{}]) at:\n{}",
                        g.name(path[0]),
                        g.name(path[1]),
                        e.thread,
                        e.held_names.join(", "),
                        e.backtrace
                    )
                })
                .unwrap_or_default();
            let msg = format!(
                "lockdep: lock-order inversion: acquiring \"{now}\" while holding \"{held}\", \
                 but the opposite order {cycle:?} already exists.\n{first_leg}\n\
                 this acquisition of \"{now}\" on thread {thread:?} at:\n{bt}",
                now = g.name(c),
                held = g.name(h),
                cycle = cycle,
                first_leg = first_leg,
                thread = std::thread::current().name().unwrap_or("<unnamed>"),
                bt = Backtrace::force_capture(),
            );
            drop(g);
            // checked: deliberate abort — a lock-order cycle means deadlock is possible
            panic!("{msg}");
        }
        let site = EdgeSite {
            thread: std::thread::current()
                .name()
                .unwrap_or("<unnamed>")
                .to_string(),
            held_names: held.iter().map(|&n| g.name(n)).collect(),
            backtrace: Backtrace::force_capture().to_string(),
        };
        g.edges.insert((h, c), site);
        g.adj.entry(h).or_default().push(c);
    }
    HELD.with(|s| s.borrow_mut().push(c));
}

/// Records a successful `try_lock` of `c`: the class is now held, but a
/// non-blocking acquisition records no order edge (it cannot be the
/// waiting half of a deadlock).
pub fn acquire_try(c: ClassId) {
    graph().acquires[(c - 1) as usize] += 1;
    HELD.with(|s| s.borrow_mut().push(c));
}

/// Records the release of `c` (guard drop, or a condvar wait parking
/// the lock).
pub fn release(c: ClassId) {
    HELD.with(|s| {
        let mut s = s.borrow_mut();
        if let Some(pos) = s.iter().rposition(|&h| h == c) {
            s.remove(pos);
        }
    });
}

/// The class names this thread currently holds, innermost last. Test
/// and diagnostic aid.
pub fn held_names() -> Vec<&'static str> {
    let held: Vec<ClassId> = HELD.with(|h| h.borrow().clone());
    let g = graph();
    held.iter().map(|&c| g.name(c)).collect()
}

/// Number of distinct acquisition-order edges recorded so far.
pub fn edge_count() -> usize {
    graph().edges.len()
}

/// Renders the whole runtime graph in the `/net/log/lockgraph` format
/// checkflow's `--observed` cross-check parses:
///
/// ```text
/// class <name> acquires=<n>
/// edge <from> -> <to> thread=<t>
/// ```
///
/// Classes sort by name and edges by (from, to), so two dumps of the
/// same history are byte-identical.
pub fn graph_dump() -> String {
    let g = graph();
    let mut out = String::new();
    let mut classes: Vec<(&str, u64)> = g
        .names
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, g.acquires[i]))
        .collect();
    classes.sort_unstable();
    for (name, n) in classes {
        out.push_str(&format!("class {name} acquires={n}\n"));
    }
    let mut edges: Vec<(&str, &str, &str)> = g
        .edges
        .iter()
        .map(|(&(from, to), site)| (g.name(from), g.name(to), site.thread.as_str()))
        .collect();
    edges.sort_unstable();
    for (from, to, thread) in edges {
        out.push_str(&format!("edge {from} -> {to} thread={thread}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Class names here are unique to this module so the shared global
    // graph never couples these tests to the rest of the suite.

    #[test]
    fn classes_dedup_by_name() {
        let a = LockClass::new("lockdep.unit.dedup");
        let b = LockClass::new("lockdep.unit.dedup");
        assert_eq!(a.id(), b.id());
        let c = LockClass::new("lockdep.unit.other");
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn held_stack_balances() {
        let a = LockClass::new("lockdep.unit.h1").id();
        let b = LockClass::new("lockdep.unit.h2").id();
        acquire(a);
        acquire(b);
        assert_eq!(held_names(), vec!["lockdep.unit.h1", "lockdep.unit.h2"]);
        release(b);
        release(a);
        assert!(held_names().is_empty());
    }

    #[test]
    fn consistent_order_is_silent() {
        let a = LockClass::new("lockdep.unit.c1").id();
        let b = LockClass::new("lockdep.unit.c2").id();
        for _ in 0..3 {
            acquire(a);
            acquire(b);
            release(b);
            release(a);
        }
    }

    #[test]
    fn same_class_nesting_is_silent() {
        let a = LockClass::new("lockdep.unit.self").id();
        acquire(a);
        acquire(a); // two instances of one class, e.g. queue -> queue
        release(a);
        release(a);
    }

    #[test]
    fn inversion_panics_with_both_names() {
        let a = LockClass::new("lockdep.unit.invA").id();
        let b = LockClass::new("lockdep.unit.invB").id();
        acquire(a);
        acquire(b); // records invA -> invB
        release(b);
        release(a);
        let err = std::panic::catch_unwind(|| {
            acquire(b);
            acquire(a); // invB -> invA closes the cycle
        })
        .expect_err("inversion must panic");
        // catch_unwind left b (and possibly a) on this thread's stack.
        release(a);
        release(b);
        let msg = err
            .downcast_ref::<String>()
            .expect("lockdep panics with a String payload");
        assert!(msg.contains("lockdep.unit.invA"), "{msg}");
        assert!(msg.contains("lockdep.unit.invB"), "{msg}");
        assert!(msg.contains("lock-order inversion"), "{msg}");
    }

    #[test]
    fn transitive_inversion_detected() {
        let a = LockClass::new("lockdep.unit.t1").id();
        let b = LockClass::new("lockdep.unit.t2").id();
        let c = LockClass::new("lockdep.unit.t3").id();
        acquire(a);
        acquire(b);
        release(b);
        release(a);
        acquire(b);
        acquire(c);
        release(c);
        release(b);
        let err = std::panic::catch_unwind(|| {
            acquire(c);
            acquire(a); // t1 -> t2 -> t3 -> t1
        })
        .expect_err("transitive inversion must panic");
        release(a);
        release(c);
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("lockdep.unit.t1"), "{msg}");
        assert!(msg.contains("lockdep.unit.t3"), "{msg}");
    }

    #[test]
    fn try_acquire_records_no_edge_but_holds() {
        let a = LockClass::new("lockdep.unit.try1").id();
        let b = LockClass::new("lockdep.unit.try2").id();
        let before = edge_count();
        acquire_try(a);
        assert_eq!(held_names(), vec!["lockdep.unit.try1"]);
        assert_eq!(edge_count(), before);
        // A blocking acquire under a try-held lock still records.
        acquire(b);
        assert!(edge_count() > before);
        release(b);
        release(a);
    }
}
