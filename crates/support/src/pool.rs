//! A sharded worker pool: the kernel's soft-interrupt service threads.
//!
//! Thread-per-kproc hot paths (one timer thread per IL/TCP
//! conversation, one rx loop per machine) cap a simulated fabric at a
//! few hundred machines. This pool replaces them with a fixed set of
//! shards; producers [`submit`] short service closures keyed by
//! conversation (or station) id, and the shard's single worker drains
//! them FIFO. Worker-thread count is O(shards) = O(cores), never
//! O(conversations), and same-key jobs are serialized for free because
//! a key always maps to the same shard.
//!
//! # Clock eras
//!
//! Workers are spawned lazily through [`vtime::kproc`](crate::vtime::kproc)
//! on first submit, stamped with the current [`vtime::era`](crate::vtime::era).
//! At every clock transition ([`vtime::enter`](crate::vtime::enter) and
//! guard drop) the era bumps and [`retire`] joins the old era's
//! workers, so a real-mode worker never services jobs inside a
//! deterministic run (it would be an alien thread the single-runner
//! census cannot serialize) and a census worker never outlives its
//! clock. Jobs queued across a transition stay queued and are drained
//! by the next era's worker, in order.
//!
//! # Lock order
//!
//! The shard lock (`support.pool.shard`) is a leaf: it is never held
//! while a job runs, so `inet.il.conn → support.pool.shard` (a conn
//! submitting its own service) and `job takes inet.il.conn` (the
//! worker, lock released) cannot form a cycle. Lockdep checks this in
//! debug builds like any other named class.
//!
//! # Job discipline
//!
//! Jobs must be short and must not block on virtual time: [`retire`]
//! joins workers during clock transitions, so a job parked on the
//! (defunct or not-yet-installed) clock would wedge the transition.
//! Protocol service routines — drain a queue, send an ack, retransmit
//! — all fit.

use crate::sync::{Condvar, Mutex};
use crate::vtime;
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Shard count: fixed so a key's shard never changes across clock
/// eras (a remap would let two workers interleave one conversation's
/// jobs). Eight matches the small-multiprocessor regime the paper's
/// CPU servers ran.
pub const NSHARDS: usize = 8;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct ShardState {
    jobs: VecDeque<Job>,
    /// The worker draining this shard, if one is live: its spawn era
    /// and the handle [`retire`] joins.
    worker: Option<(u64, vtime::KprocHandle<()>)>,
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

fn shards() -> &'static [Shard; NSHARDS] {
    static SHARDS: OnceLock<[Shard; NSHARDS]> = OnceLock::new();
    SHARDS.get_or_init(|| {
        std::array::from_fn(|_| Shard {
            state: Mutex::named(
                ShardState { jobs: VecDeque::new(), worker: None },
                "support.pool.shard",
            ),
            cv: Condvar::new(),
        })
    })
}

/// Map a conversation/station key to its shard index.
pub fn shard_of(key: u64) -> usize {
    (key % NSHARDS as u64) as usize
}

/// Per-shard submission counters, process-global like the shards
/// themselves. Observers (netlog's `pool` facility) snapshot these and
/// report deltas, so cumulative lifetime values never leak into a
/// deterministic run's report.
static SUBMITTED: [AtomicU64; NSHARDS] = [const { AtomicU64::new(0) }; NSHARDS];
static INLINE_RUN: [AtomicU64; NSHARDS] = [const { AtomicU64::new(0) }; NSHARDS];

/// A snapshot of the pool's counters: jobs enqueued per shard, jobs
/// run inline on the submitter (worker-spawn failure fallback), and
/// the instantaneous queue depth per shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs enqueued to each shard, cumulative.
    pub submitted: [u64; NSHARDS],
    /// Jobs run inline because the shard worker could not spawn.
    pub inline_run: [u64; NSHARDS],
    /// Jobs currently queued on each shard.
    pub depth: [u64; NSHARDS],
}

/// Snapshots the pool counters (diagnostics; see netlog's `pool`
/// facility for the rendered form).
pub fn stats() -> PoolStats {
    let mut s = PoolStats::default();
    for i in 0..NSHARDS {
        s.submitted[i] = SUBMITTED[i].load(Ordering::Relaxed);
        s.inline_run[i] = INLINE_RUN[i].load(Ordering::Relaxed);
        s.depth[i] = shards()[i].state.lock().jobs.len() as u64;
    }
    s
}

/// Enqueues `job` on the shard for `key` and wakes its worker,
/// spawning the worker first if this era has none yet. Jobs with the
/// same key run FIFO, one at a time. Fails only if the worker thread
/// cannot be spawned — the caller (e.g. a dial path) should surface
/// that as an error rather than panic.
pub fn submit(key: u64, job: impl FnOnce() + Send + 'static) -> io::Result<()> {
    let idx = shard_of(key);
    let shard = &shards()[idx];
    let mut st = shard.state.lock();
    ensure_worker(idx, &mut st)?;
    st.jobs.push_back(Box::new(job));
    drop(st);
    SUBMITTED[idx].fetch_add(1, Ordering::Relaxed);
    shard.cv.notify_one();
    Ok(())
}

/// Like [`submit`], but on worker-spawn failure runs `job` inline on
/// the calling thread instead of dropping it. For callers (the timer
/// wheel) where a late callback beats a lost one.
pub fn submit_or_run(key: u64, job: impl FnOnce() + Send + 'static) {
    let idx = shard_of(key);
    let shard = &shards()[idx];
    let mut st = shard.state.lock();
    if ensure_worker(idx, &mut st).is_err() {
        drop(st);
        INLINE_RUN[idx].fetch_add(1, Ordering::Relaxed);
        job();
        return;
    }
    st.jobs.push_back(Box::new(job));
    drop(st);
    SUBMITTED[idx].fetch_add(1, Ordering::Relaxed);
    shard.cv.notify_one();
}

/// Number of jobs currently queued across all shards (diagnostics).
pub fn backlog() -> usize {
    shards().iter().map(|s| s.state.lock().jobs.len()).sum()
}

/// Spawns the shard's worker if none from the current era is live.
/// Holding the shard lock across the spawn is safe: under vtime the
/// child gates until the spawner parks, by which point the lock is
/// free; in real mode the child just blocks briefly on it.
fn ensure_worker(idx: usize, st: &mut ShardState) -> io::Result<()> {
    let era = vtime::era();
    match &st.worker {
        Some((e, _)) if *e == era => Ok(()),
        _ => {
            // A stale handle here means retire() hasn't run for this
            // shard yet this era — it will join the old worker; we
            // must not lose the handle. retire() always runs at the
            // era bump, so by submit time the slot is clear.
            // blocking-ok: the closure runs on the spawned shard
            // kproc, not in the caller's context; checked: likewise,
            // a panic there unwinds the worker, not the caller
            let handle = vtime::kproc(&format!("pool-{idx}"), move || worker_loop(idx, era))?;
            st.worker = Some((era, handle));
            Ok(())
        }
    }
}

fn worker_loop(idx: usize, my_era: u64) {
    let shard = &shards()[idx];
    let mut st = shard.state.lock();
    loop {
        if vtime::era() != my_era {
            return;
        }
        if let Some(job) = st.jobs.pop_front() {
            drop(st);
            job();
            st = shard.state.lock();
            continue;
        }
        shard.cv.wait(&mut st);
    }
}

/// Joins every worker from a previous era. Called by
/// [`vtime`](crate::vtime) at clock transitions, after the era bump;
/// the join always runs in real-time mode (the clock is either not
/// yet installed or already uninstalled), so it cannot park on a
/// virtual clock.
pub(crate) fn retire() {
    let era = vtime::era();
    let mut handles = Vec::new();
    for shard in shards() {
        let mut st = shard.state.lock();
        if let Some((e, _)) = &st.worker {
            if *e != era {
                if let Some((_, h)) = st.worker.take() {
                    handles.push(h);
                }
            }
        }
        drop(st);
        shard.cv.notify_all();
    }
    for h in handles {
        let _ = h.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn same_key_jobs_run_in_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        const N: usize = 64;
        for i in 0..N {
            let log = Arc::clone(&log);
            let done = Arc::clone(&done);
            submit(7, move || {
                log.lock().push(i);
                let (cnt, cv) = &*done;
                *cnt.lock() += 1;
                cv.notify_all();
            })
            .expect("submit");
        }
        let (cnt, cv) = &*done;
        let mut g = cnt.lock();
        while *g < N {
            cv.wait(&mut g);
        }
        drop(g);
        let got = log.lock().clone();
        let want: Vec<usize> = (0..N).collect();
        assert_eq!(got, want, "shard must drain FIFO");
    }

    #[test]
    fn keys_spread_over_fixed_shards() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..1000u64 {
            seen.insert(shard_of(k));
            assert_eq!(shard_of(k), shard_of(k), "stable mapping");
        }
        assert_eq!(seen.len(), NSHARDS);
    }

    #[test]
    fn submit_counts_down_even_across_shards() {
        let hits = Arc::new(AtomicUsize::new(0));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        const N: usize = 100;
        for k in 0..N as u64 {
            let hits = Arc::clone(&hits);
            let done = Arc::clone(&done);
            submit(k, move || {
                hits.fetch_add(1, Ordering::SeqCst);
                let (cnt, cv) = &*done;
                *cnt.lock() += 1;
                cv.notify_all();
            })
            .expect("submit");
        }
        let (cnt, cv) = &*done;
        let mut g = cnt.lock();
        while *g < N {
            cv.wait(&mut g);
        }
        assert_eq!(hits.load(Ordering::SeqCst), N);
    }
}
