//! A minimal property-test runner.
//!
//! Each property is an ordinary function over a [`Gen`], run for a
//! fixed number of cases with deterministic per-case seeds. On failure
//! the runner prints the case's seed so the exact inputs can be
//! replayed with `P9_CHECK_SEED=<seed>`; `P9_CHECK_CASES=<n>` scales
//! every property's case count (e.g. in a long-running CI lane).
//!
//! The [`props!`](crate::props) macro turns properties into `#[test]`
//! functions:
//!
//! ```
//! plan9_support::props! {
//!     fn prop_reverse_involutes(g, cases = 32) {
//!         let v = g.vec(0..20, |g| g.u8());
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         assert_eq!(v, w);
//!     }
//! }
//! ```

use crate::rng::SmallRng;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The input source handed to each property case: a seeded [`SmallRng`]
/// plus generator combinators for the shapes tests need.
pub struct Gen {
    rng: SmallRng,
}

impl Gen {
    /// Creates a generator from a case seed.
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG, for draws these combinators don't cover.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// An arbitrary `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// An arbitrary `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// An arbitrary `u16`.
    pub fn u16(&mut self) -> u16 {
        (self.rng.next_u64() >> 48) as u16
    }

    /// An arbitrary `u8`.
    pub fn u8(&mut self) -> u8 {
        (self.rng.next_u64() >> 56) as u8
    }

    /// An arbitrary `bool`.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// A `usize` drawn uniformly from `range`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.rng.gen_range(range)
    }

    /// A `u16` drawn uniformly from `range`.
    pub fn u16_in(&mut self, range: Range<u16>) -> u16 {
        self.rng.gen_range(range)
    }

    /// A `u32` drawn uniformly from `range`.
    pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
        self.rng.gen_range(range)
    }

    /// An `f64` drawn uniformly from `range`.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        self.rng.gen_range(range)
    }

    /// A byte vector whose length is drawn from `len`.
    pub fn bytes(&mut self, len: Range<usize>) -> Vec<u8> {
        let n = self.usize_in(len);
        let mut v = vec![0u8; n];
        self.rng.fill_bytes(&mut v);
        v
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `item`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut item: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| item(self)).collect()
    }

    /// A string whose length is drawn from `len` and whose characters
    /// come uniformly from `alphabet`.
    pub fn string_of(&mut self, alphabet: &str, len: Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        assert!(!chars.is_empty(), "string_of: empty alphabet");
        let n = self.usize_in(len);
        (0..n)
            .map(|_| chars[self.rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Runs `cases` seeded cases of the property `f`, printing a replayable
/// seed on failure. Honors `P9_CHECK_CASES` and `P9_CHECK_SEED`.
pub fn run<F: Fn(&mut Gen)>(name: &str, cases: u32, f: F) {
    if let Ok(seed) = std::env::var("P9_CHECK_SEED") {
        let seed: u64 = seed.parse().expect("P9_CHECK_SEED must be a u64");
        let mut g = Gen::from_seed(seed);
        f(&mut g);
        return;
    }
    let cases = std::env::var("P9_CHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases);
    for case in 0..cases {
        // A fixed base keeps runs reproducible; hashing in the name
        // decorrelates properties that share a case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let seed = h.wrapping_add(case as u64);
        let mut g = Gen::from_seed(seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| f(&mut g))) {
            eprintln!("property {name} failed at case {case}; replay with P9_CHECK_SEED={seed}");
            resume_unwind(panic);
        }
    }
}

/// Declares property tests: each `fn name(g, cases = N) { .. }` becomes
/// a `#[test]` that calls [`check::run`](run) with a fresh [`Gen`].
#[macro_export]
macro_rules! props {
    ($($(#[$attr:meta])* fn $name:ident($g:ident, cases = $cases:expr) $body:block)+) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                $crate::check::run(stringify!($name), $cases, |$g: &mut $crate::check::Gen| $body);
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_values() {
        let mut a = Gen::from_seed(42);
        let mut b = Gen::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
        assert_eq!(a.bytes(5..50), b.bytes(5..50));
        assert_eq!(a.string_of("xyz", 1..9), b.string_of("xyz", 1..9));
    }

    #[test]
    fn string_of_respects_alphabet_and_length() {
        let mut g = Gen::from_seed(7);
        for _ in 0..200 {
            let s = g.string_of("abc", 2..6);
            assert!((2..6).contains(&s.len()));
            assert!(s.chars().all(|c| "abc".contains(c)));
        }
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        run("always_fails", 3, |_g| panic!("deliberate"));
    }

    props! {
        fn prop_macro_defines_runnable_test(g, cases = 8) {
            let v = g.vec(1..10, |g| g.u16());
            assert!((1..10).contains(&v.len()));
        }
    }
}
