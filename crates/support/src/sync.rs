//! No-poison lock primitives over `std::sync`.
//!
//! The kernel-style code in this workspace treats a panic while holding
//! a lock as fatal to the invariants anyway, so poisoning is noise:
//! `lock()` returns the guard directly, recovering the inner state if a
//! previous holder panicked. The API mirrors `parking_lot`, which the
//! workspace used before the build went hermetic:
//!
//! - [`Mutex::lock`] → guard, no `Result`
//! - [`RwLock::read`]/[`RwLock::write`] → guards, no `Result`
//! - [`Condvar::wait`] takes `&mut MutexGuard` instead of consuming it
//! - [`Condvar::wait_until`] returns a [`WaitTimeoutResult`]
//!
//! Locks built with [`Mutex::named`]/[`RwLock::named`] additionally
//! participate in [`lockdep`](crate::lockdep) order checking in debug
//! builds; in release builds `named` is exactly `new` and the checking
//! machinery does not exist in the binary.

use std::collections::VecDeque;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::vtime::{self, Parker, VirtualClock};

#[cfg(debug_assertions)]
use crate::lockdep::{self, ClassId, LockClass};

/// A mutual-exclusion lock whose guard is returned without a poison
/// `Result`.
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    dep: Option<LockClass>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(debug_assertions)]
            dep: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a mutex belonging to the lockdep class `name`. Many
    /// locks may share one name — every stream queue is one class —
    /// and debug builds verify a consistent acquisition order across
    /// all named classes. In release builds this is exactly [`Mutex::new`].
    pub const fn named(value: T, name: &'static str) -> Mutex<T> {
        #[cfg(not(debug_assertions))]
        let _ = name;
        Mutex {
            #[cfg(debug_assertions)]
            dep: Some(LockClass::new(name)),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg(debug_assertions)]
    fn class(&self) -> Option<ClassId> {
        self.dep.as_ref().map(LockClass::id)
    }

    /// Acquires the lock, blocking until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let class = self.class();
        #[cfg(debug_assertions)]
        if let Some(c) = class {
            lockdep::acquire(c);
        }
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            raw: &self.inner,
            #[cfg(debug_assertions)]
            class,
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        let class = self.class();
        #[cfg(debug_assertions)]
        if let Some(c) = class {
            lockdep::acquire_try(c);
        }
        Some(MutexGuard {
            inner: Some(inner),
            raw: &self.inner,
            #[cfg(debug_assertions)]
            class,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// The guard returned by [`Mutex::lock`].
///
/// The inner `std` guard lives in an `Option` so [`Condvar::wait`] can
/// move it out and back while the caller keeps borrowing this wrapper;
/// `raw` points back at the lock itself so a virtual-time wait can drop
/// the lock entirely and re-acquire it after the clock wakes it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    raw: &'a std::sync::Mutex<T>,
    #[cfg(debug_assertions)]
    class: Option<ClassId>,
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(c) = self.class {
            lockdep::release(c);
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // checked: None only inside a wait on this same thread, which
        // cannot overlap a deref of the guard
        self.inner.as_ref().expect("guard stolen during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // checked: None only inside a wait on this same thread, which
        // cannot overlap a deref of the guard
        self.inner.as_mut().expect("guard stolen during wait")
    }
}

/// A reader-writer lock whose guards are returned without poison
/// `Result`s.
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    dep: Option<LockClass>,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(debug_assertions)]
            dep: None,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a lock belonging to the lockdep class `name`; see
    /// [`Mutex::named`]. Read and write acquisitions count the same for
    /// ordering purposes.
    pub const fn named(value: T, name: &'static str) -> RwLock<T> {
        #[cfg(not(debug_assertions))]
        let _ = name;
        RwLock {
            #[cfg(debug_assertions)]
            dep: Some(LockClass::new(name)),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg(debug_assertions)]
    fn class(&self) -> Option<ClassId> {
        self.dep.as_ref().map(LockClass::id)
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let class = self.class();
        #[cfg(debug_assertions)]
        if let Some(c) = class {
            lockdep::acquire(c);
        }
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            class,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let class = self.class();
        #[cfg(debug_assertions)]
        if let Some(c) = class {
            lockdep::acquire(c);
        }
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            class,
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// The guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    class: Option<ClassId>,
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(c) = self.class {
            lockdep::release(c);
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// The guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    class: Option<ClassId>,
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(c) = self.class {
            lockdep::release(c);
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Whether a timed condition wait gave up before being notified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`] guards by `&mut`
/// reference, so waiting does not consume the guard binding.
///
/// Under an installed [`vtime`] clock, waits park on the virtual clock
/// instead of the OS condvar: the waiter queues a [`Parker`] (still
/// holding the user lock, so a racing notify cannot miss it), drops the
/// lock, and blocks until a notify or a virtual-timer wake. The
/// real-time path is untouched apart from one atomic load; the parker
/// queue is not even allocated until the first virtual wait.
pub struct Condvar {
    inner: std::sync::Condvar,
    /// Virtual waiters, in arrival order. `OnceLock` keeps `new` const
    /// and the real-time footprint at one pointer.
    vq: OnceLock<std::sync::Mutex<VecDeque<Arc<Parker>>>>,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
            vq: OnceLock::new(),
        }
    }

    fn vq(&self) -> &std::sync::Mutex<VecDeque<Arc<Parker>>> {
        self.vq.get_or_init(|| std::sync::Mutex::new(VecDeque::new()))
    }

    /// Parks the calling thread on the virtual clock: registers a
    /// parker (timer armed if `deadline` is set) *before* releasing the
    /// user lock, waits for a wake, re-acquires. Returns whether the
    /// wake was a timeout.
    fn vwait<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        clock: &Arc<VirtualClock>,
        deadline: Option<Instant>,
    ) -> bool {
        let parker = clock.park_begin(deadline);
        self.vq()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(Arc::clone(&parker));
        // Only now release the user lock: a notifier must be able to
        // find the parker the instant the lock is free.
        let raw = guard.raw;
        // checked: a live guard always carries its lock outside a wait
        let g = guard.inner.take().expect("guard stolen during wait");
        #[cfg(debug_assertions)]
        if let Some(c) = guard.class {
            lockdep::release(c);
        }
        drop(g);
        let timed_out = clock.park_wait(&parker);
        {
            // A timer or teardown wake leaves our queue entry behind;
            // collect it so notifiers don't trip over it.
            let mut q = self.vq().lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(pos) = q.iter().position(|p| p.id() == parker.id()) {
                q.remove(pos);
            }
        }
        #[cfg(debug_assertions)]
        if let Some(c) = guard.class {
            lockdep::acquire(c);
        }
        guard.inner = Some(raw.lock().unwrap_or_else(PoisonError::into_inner));
        timed_out
    }

    /// Blocks until notified, releasing the guard's lock while asleep.
    /// Spurious wakeups are possible; callers loop on their condition.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some(clock) = vtime::active() {
            self.vwait(guard, &clock, None);
            return;
        }
        // checked: a live guard always carries its lock outside a wait
        let g = guard.inner.take().expect("guard stolen during wait");
        // The lock is parked while asleep: lockdep must see it released
        // here and re-acquired on wakeup, or held-stack accounting and
        // ordering both go wrong.
        #[cfg(debug_assertions)]
        if let Some(c) = guard.class {
            lockdep::release(c);
        }
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        if let Some(c) = guard.class {
            lockdep::acquire(c);
        }
        guard.inner = Some(g);
    }

    /// Blocks until notified or `deadline` passes; reports which. A
    /// deadline at or before the current time reports timeout
    /// immediately, without touching the OS condvar — so virtual waits
    /// with stale deadlines can never block.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        if let Some(clock) = vtime::active() {
            if deadline <= clock.now() {
                return WaitTimeoutResult { timed_out: true };
            }
            return WaitTimeoutResult {
                timed_out: self.vwait(guard, &clock, Some(deadline)),
            };
        }
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult { timed_out: true };
        }
        self.os_wait_for(guard, deadline - now)
    }

    /// Blocks until notified or `timeout` elapses; reports which.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        if let Some(clock) = vtime::active() {
            let deadline = clock.now() + timeout;
            return WaitTimeoutResult {
                timed_out: self.vwait(guard, &clock, Some(deadline)),
            };
        }
        self.os_wait_for(guard, timeout)
    }

    fn os_wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        // checked: a live guard always carries its lock outside a wait
        let g = guard.inner.take().expect("guard stolen during wait");
        #[cfg(debug_assertions)]
        if let Some(c) = guard.class {
            lockdep::release(c);
        }
        let (g, r) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        if let Some(c) = guard.class {
            lockdep::acquire(c);
        }
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        if let Some(q) = self.vq.get() {
            // Pop until one wake sticks: entries whose parkers a timer
            // already woke are stale and must not absorb the notify.
            loop {
                let p = q.lock().unwrap_or_else(PoisonError::into_inner).pop_front();
                match p {
                    None => break,
                    Some(p) => {
                        if VirtualClock::wake_notified(&p) {
                            break;
                        }
                    }
                }
            }
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some(q) = self.vq.get() {
            let drained: Vec<Arc<Parker>> = q
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .drain(..)
                .collect();
            for p in drained {
                let _ = VirtualClock::wake_notified(&p);
            }
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u32));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 0);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A poisoned std mutex would now error; ours just hands the
        // state back.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
        // Past deadlines report timeout immediately.
        let r = cv.wait_until(&mut g, Instant::now() - Duration::from_millis(1));
        assert!(r.timed_out());
    }
}
