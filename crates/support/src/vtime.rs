//! A deterministic discrete-event virtual clock for the whole kernel.
//!
//! Timer-driven protocols (IL's query/rexmit timers, TCP's
//! timeout-rexmit, URP's retries) make every loss sweep burn real
//! wall-clock waiting out retransmissions, and no two runs are
//! bit-identical. This module virtualises the clock instead: under
//! [`enter`], `time::now()` reads a virtual nanosecond counter and
//! every timed wait in [`sync`](crate::sync) (and therefore
//! [`chan`](crate::chan)) becomes a *timer* on this clock rather than
//! an OS timeout.
//!
//! # The single-runner rule
//!
//! The clock keeps a census of kernel processes: threads register at
//! spawn (via [`kproc`] or an explicit [`pre_register`] token) and
//! unregister when they exit. The clock is also a cooperative
//! scheduler over that census: **at most one registered thread
//! executes at a time**. Every other registered thread is either
//! *parked* (blocked in a virtual wait) or *ready* (woken, queued for
//! its turn). When the running thread parks or exits, the scheduler
//! grants the CPU to the next ready thread, FIFO; when nothing is
//! ready, it jumps the clock to the earliest pending timer deadline
//! and wakes that waiter (ties broken by registration order). This is
//! the classic sequential discrete-event simulation rule, and the
//! serialization is what makes a seeded run replayable: the execution
//! order is a pure function of the program and the timer deadlines,
//! never of OS scheduling.
//!
//! Newly spawned kprocs do not run immediately: they queue at a gate
//! and are admitted in *spawn order* (the order their census slots
//! were reserved), so a burst of spawns admits its children
//! identically on every run no matter how the OS staggers the actual
//! thread starts. While a reserved slot has yet to arrive at the gate,
//! grants and timer jumps are held — a child racing through `clone`
//! can never lose its place in the sequence.
//!
//! Joining a kproc is a virtual event too: [`KprocHandle::join`] parks
//! on the clock until the kproc's body signals completion, so the
//! joiner re-enters the sequence at a deterministic point. Only a raw
//! OS join is invisible to the scheduler — wrap those (and any other
//! unobservable blocking) in [`block_external`].
//!
//! # Lock ordering
//!
//! The clock's internal locks are raw `std` locks (leaf locks,
//! invisible to lockdep, never held across user code): the clock state
//! lock, and one tiny state lock per [`Parker`]. The ordering is
//! `user mutex → clock state → parker`; condvar wait queues are popped
//! *before* the clock lock is taken, so the two are never nested. The
//! real-time path never touches any of this — one relaxed atomic load
//! distinguishes the modes.
//!
//! # Escape hatches
//!
//! [`block_external`] temporarily removes the calling thread from the
//! census around operations the clock cannot see (joining a non-kproc
//! OS thread, real I/O), re-entering through the gate on the way out.
//! [`time::real_now`](crate::time::real_now) reads the real monotonic
//! clock for wall-time measurements in bench harnesses.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Process-global flag: true while a virtual clock is installed. The
/// real-time fast path is this one load.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// The clock *era*: bumped at every install and uninstall. Long-lived
/// service threads (the [`pool`](crate::pool) shard workers, the
/// [`wheel`](crate::wheel) thread) record the era they were spawned in
/// and exit when it changes, so a thread spawned under one clock
/// regime can never service work under another — a real-mode worker
/// surviving into a virtual run would be an alien thread the
/// single-runner rule cannot see.
static ERA: AtomicU64 = AtomicU64::new(0);

/// The current clock era. Spawn-era mismatch is the retirement signal
/// for pooled service threads.
pub fn era() -> u64 {
    ERA.load(Ordering::Acquire)
}

/// Bumps the era and retires every pooled service thread spawned under
/// the previous one (notify, then join). Called at both clock
/// transitions, always in real-time mode from the worker's point of
/// view of the join.
fn retire_services() {
    ERA.fetch_add(1, Ordering::AcqRel);
    crate::wheel::retire();
    crate::pool::retire();
}

/// The installed clock, if any. A plain leaf lock: held only for a
/// clone.
static CLOCK: StdMutex<Option<Arc<VirtualClock>>> = StdMutex::new(None);

fn plock<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Returns the installed virtual clock, or `None` in real-time mode.
pub fn active() -> Option<Arc<VirtualClock>> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    plock(&CLOCK).clone()
}

/// True while a virtual clock is installed.
pub fn is_virtual() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// A thread parked in a virtual wait. Shared between the parked thread,
/// the condvar's wait queue, and the clock's timer heap; whoever wakes
/// it first wins, later wakers see `woken` and move on.
pub struct Parker {
    id: u64,
    /// Whether this thread is in the census (registered with `clock`).
    /// Census threads need a scheduler grant on top of the wake; alien
    /// threads are just notified.
    counted: bool,
    /// Whether the wait has a deadline; defunct teardown reports timed
    /// waits as timed out and untimed ones as notified.
    timed: bool,
    clock: Arc<VirtualClock>,
    state: StdMutex<ParkState>,
    cv: StdCondvar,
}

struct ParkState {
    /// The wait's condition fired (a notify, a timer, or teardown).
    woken: bool,
    timed_out: bool,
    /// The scheduler handed this thread the CPU. Census threads block
    /// until woken *and* granted; only one grant is outstanding at a
    /// time.
    granted: bool,
}

impl Parker {
    pub(crate) fn id(&self) -> u64 {
        self.id
    }
}

/// An entry in the timer heap: min-ordered by (deadline, registration
/// sequence) so the wake order at equal deadlines is deterministic.
struct TimerEntry {
    deadline_ns: u64,
    seq: u64,
    parker: Arc<Parker>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline_ns == other.deadline_ns && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // deadline (lowest seq on ties) on top.
        (other.deadline_ns, other.seq).cmp(&(self.deadline_ns, self.seq))
    }
}

struct ClockState {
    /// Threads in the census.
    registered: usize,
    /// Census threads currently granted the CPU (0 or 1 in steady
    /// state; the counters saturate rather than assert so teardown
    /// races stay harmless).
    running: usize,
    /// Census slots reserved by `pre_register` whose threads have yet
    /// to arrive at the gate. Grants and timer jumps are held while any
    /// are outstanding.
    pending: usize,
    /// Next parker id; also the deterministic tie-break and spawn-order
    /// sequence.
    next_id: u64,
    /// Woken census threads awaiting their grant, in wake order.
    ready: VecDeque<Arc<Parker>>,
    /// Gate arrivals (new kprocs, `block_external` returns) not yet
    /// admitted to `ready`; flushed in spawn-sequence order once no
    /// slots are pending.
    arrivals: Vec<Arc<Parker>>,
    timers: BinaryHeap<TimerEntry>,
    /// Every currently-parked parker, by id, so teardown can wake them.
    waiting: HashMap<u64, Arc<Parker>>,
    /// Set at uninstall: no further parks, grants, or advances.
    defunct: bool,
    /// How many times the clock has jumped forward.
    advances: u64,
}

/// The discrete-event virtual clock. Install with [`enter`]; read
/// through [`time::now`](crate::time::now).
pub struct VirtualClock {
    /// Real instant at install; virtual instants are `epoch + now_ns`,
    /// so every `Instant` in the program stays a plain `std` instant
    /// and existing deadline fields need no type changes.
    epoch: Instant,
    now_ns: AtomicU64,
    state: StdMutex<ClockState>,
}

impl VirtualClock {
    fn new() -> VirtualClock {
        VirtualClock {
            epoch: Instant::now(),
            now_ns: AtomicU64::new(0),
            state: StdMutex::new(ClockState {
                registered: 0,
                running: 0,
                pending: 0,
                next_id: 0,
                ready: VecDeque::new(),
                arrivals: Vec::new(),
                timers: BinaryHeap::new(),
                waiting: HashMap::new(),
                defunct: false,
                advances: 0,
            }),
        }
    }

    /// The current virtual instant.
    pub fn now(&self) -> Instant {
        self.epoch + Duration::from_nanos(self.now_ns.load(Ordering::Acquire))
    }

    /// Virtual time elapsed since the clock was installed.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.now_ns.load(Ordering::Acquire))
    }

    /// How many times the clock has jumped to a timer deadline.
    pub fn advances(&self) -> u64 {
        plock(&self.state).advances
    }

    /// Census snapshot: (registered, parked).
    pub fn census(&self) -> (usize, usize) {
        let st = plock(&self.state);
        let parked = st.waiting.values().filter(|p| p.counted).count();
        (st.registered, parked)
    }

    fn to_ns(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Sleeps for `d` of virtual time (a pure timer park). A zero
    /// duration is a deterministic yield: the caller re-queues behind
    /// every already-ready thread.
    pub fn sleep(self: &Arc<Self>, d: Duration) {
        let deadline = self.now() + d;
        let p = self.park_begin(Some(deadline));
        self.park_wait(&p);
    }

    /// Registers a parker for the calling thread, moving it from
    /// running to parked and arming a timer if `deadline` is set. Must
    /// be called *before* releasing the lock whose condvar the caller
    /// is waiting on — the parker must be discoverable by a notifier
    /// the instant the lock is free.
    pub(crate) fn park_begin(self: &Arc<Self>, deadline: Option<Instant>) -> Arc<Parker> {
        let counted = REG.with(|r| {
            r.borrow()
                .as_ref()
                .is_some_and(|t| Arc::ptr_eq(&t.clock, self))
        });
        let mut st = plock(&self.state);
        let id = st.next_id;
        st.next_id += 1;
        let parker = Arc::new(Parker {
            id,
            counted,
            timed: deadline.is_some(),
            clock: Arc::clone(self),
            state: StdMutex::new(ParkState {
                woken: false,
                timed_out: false,
                granted: false,
            }),
            cv: StdCondvar::new(),
        });
        if st.defunct {
            // The clock was torn down concurrently: hand back a
            // pre-woken parker (one spurious wake, caller re-checks).
            {
                let mut ps = plock(&parker.state);
                ps.woken = true;
                ps.timed_out = parker.timed;
                ps.granted = true;
            }
            return parker;
        }
        if counted {
            // The caller gives up the CPU; the dispatch below hands it
            // to the next ready thread or advances the clock.
            st.running = st.running.saturating_sub(1);
        }
        st.waiting.insert(id, Arc::clone(&parker));
        if let Some(d) = deadline {
            let dns = self.to_ns(d);
            if dns <= self.now_ns.load(Ordering::Acquire) {
                // Already-past deadline: an immediate timeout, never an
                // OS wait — the thread just re-queues for its grant.
                wake_locked(&mut st, &parker, true);
            } else {
                st.timers.push(TimerEntry {
                    deadline_ns: dns,
                    seq: id,
                    parker: Arc::clone(&parker),
                });
            }
        }
        self.dispatch(&mut st);
        parker
    }

    /// Blocks the calling thread until its parker is woken — and, for
    /// census threads, granted the CPU. Returns whether the wake was a
    /// timeout.
    pub(crate) fn park_wait(&self, p: &Parker) -> bool {
        let mut ps = plock(&p.state);
        while !ps.woken || (p.counted && !ps.granted) {
            ps = p.cv.wait(ps).unwrap_or_else(PoisonError::into_inner);
        }
        ps.timed_out
    }

    /// Wakes `p` as a notification (not a timeout). Returns false if it
    /// was already woken (the notify should be retried on another
    /// parker).
    pub(crate) fn wake_notified(p: &Arc<Parker>) -> bool {
        let clock = &p.clock;
        let mut st = plock(&clock.state);
        let fresh = wake_locked(&mut st, p, false);
        if fresh {
            clock.dispatch(&mut st);
        }
        fresh
    }

    /// The scheduler: if no census thread holds the CPU and every
    /// reserved slot has arrived, admit gate arrivals (in spawn order),
    /// grant the next ready thread, or — when nothing is ready — jump
    /// the clock to the earliest timer deadline and wake that waiter.
    fn dispatch(&self, st: &mut ClockState) {
        if st.defunct || st.running > 0 || st.pending > 0 {
            return;
        }
        loop {
            if !st.arrivals.is_empty() {
                // Spawn-sequence order, not OS thread-start order.
                st.arrivals.sort_by_key(|p| p.id);
                let admitted: Vec<Arc<Parker>> = st.arrivals.drain(..).collect();
                st.ready.extend(admitted);
            }
            if let Some(p) = st.ready.pop_front() {
                st.running += 1;
                {
                    let mut ps = plock(&p.state);
                    ps.granted = true;
                }
                p.cv.notify_one();
                return;
            }
            // Quiescent: every census thread is parked and none is
            // queued. Jump to the earliest timer.
            let Some(entry) = st.timers.pop() else {
                // No timers either. An external thread may still
                // notify; if not, this is a genuine deadlock and the
                // usual debugging applies.
                return;
            };
            if plock(&entry.parker.state).woken {
                // Stale: this parker was already notified; its heap
                // entry just hadn't been collected.
                continue;
            }
            let now = self.now_ns.load(Ordering::Acquire);
            if entry.deadline_ns > now {
                self.now_ns.store(entry.deadline_ns, Ordering::Release);
                st.advances += 1;
            }
            let counted = entry.parker.counted;
            wake_locked(st, &entry.parker, true);
            if !counted {
                // An alien waiter was notified directly; it re-enters
                // the clock (or not) on its own schedule.
                return;
            }
            // A census waiter: it is now at the head of `ready`, and
            // the loop grants it.
        }
    }

    /// Reserves a census slot for a thread about to be spawned; the
    /// returned sequence fixes its admission order at the gate.
    fn reserve(&self) -> u64 {
        let mut st = plock(&self.state);
        st.registered += 1;
        st.pending += 1;
        let seq = st.next_id;
        st.next_id += 1;
        seq
    }

    /// Releases a reserved slot whose thread never arrived (failed
    /// spawn, unadopted token).
    fn release_slot(&self) {
        let mut st = plock(&self.state);
        st.registered = st.registered.saturating_sub(1);
        st.pending = st.pending.saturating_sub(1);
        self.dispatch(&mut st);
    }

    /// Removes an exiting (running) thread from the census and hands
    /// the CPU on.
    fn unregister_running(&self) {
        let mut st = plock(&self.state);
        st.registered = st.registered.saturating_sub(1);
        st.running = st.running.saturating_sub(1);
        self.dispatch(&mut st);
    }

    /// Queues the calling thread at the gate under sequence `seq` and
    /// blocks until the scheduler grants it the CPU. `from_pending`
    /// marks arrivals that consume a reserved slot.
    fn gate_in(self: &Arc<Self>, seq: u64, from_pending: bool) {
        let parker = {
            let mut st = plock(&self.state);
            if from_pending {
                st.pending = st.pending.saturating_sub(1);
            }
            if st.defunct {
                return;
            }
            let parker = Arc::new(Parker {
                id: seq,
                counted: true,
                timed: false,
                clock: Arc::clone(self),
                state: StdMutex::new(ParkState {
                    // Not waiting for any condition — only for the
                    // grant.
                    woken: true,
                    timed_out: false,
                    granted: false,
                }),
                cv: StdCondvar::new(),
            });
            st.arrivals.push(Arc::clone(&parker));
            self.dispatch(&mut st);
            parker
        };
        self.park_wait(&parker);
    }
}

/// Wakes `p` under the clock lock: flips its flag and removes it from
/// the waiting map. A census parker is queued for its scheduler grant;
/// an alien (or teardown-era) parker is signalled directly. Returns
/// false if it was already woken.
fn wake_locked(st: &mut ClockState, p: &Arc<Parker>, timed_out: bool) -> bool {
    let mut ps = plock(&p.state);
    if ps.woken {
        return false;
    }
    ps.woken = true;
    ps.timed_out = timed_out;
    if st.defunct || !p.counted {
        ps.granted = true;
        drop(ps);
        st.waiting.remove(&p.id);
        p.cv.notify_one();
    } else {
        drop(ps);
        st.waiting.remove(&p.id);
        st.ready.push_back(Arc::clone(p));
    }
    true
}

thread_local! {
    static REG: std::cell::RefCell<Option<ThreadReg>> =
        const { std::cell::RefCell::new(None) };
}

/// Census membership for the owning thread; dropping it (at thread
/// exit, via TLS destruction) unregisters.
struct ThreadReg {
    clock: Arc<VirtualClock>,
}

impl Drop for ThreadReg {
    fn drop(&mut self) {
        self.clock.unregister_running();
    }
}

/// A census slot reserved by the spawning thread, to be adopted by the
/// child. Reserving *before* the spawn closes the gap where the parent
/// continues (and possibly quiesces the system) while the child has not
/// yet registered itself — and fixes the child's admission order at the
/// gate. If the token is dropped unadopted (spawn failed), the slot is
/// released.
pub struct KprocToken {
    clock: Option<Arc<VirtualClock>>,
    seq: u64,
}

/// Reserves a census slot for a thread about to be spawned. Returns an
/// inert token in real-time mode.
pub fn pre_register() -> KprocToken {
    match active() {
        Some(c) => {
            let seq = c.reserve();
            KprocToken { clock: Some(c), seq }
        }
        None => KprocToken { clock: None, seq: 0 },
    }
}

impl KprocToken {
    /// Adopts the reserved slot for the calling thread (call first
    /// thing in the spawned closure) and blocks until the scheduler
    /// admits it.
    pub fn adopt(mut self) {
        if let Some(c) = self.clock.take() {
            let seq = self.seq;
            let duplicate = REG.with(|r| {
                let mut r = r.borrow_mut();
                if r.as_ref().is_some_and(|t| Arc::ptr_eq(&t.clock, &c)) {
                    true
                } else {
                    // Replacing a registration on an older clock drops
                    // it (unregistering there) first.
                    *r = Some(ThreadReg { clock: Arc::clone(&c) });
                    false
                }
            });
            if duplicate {
                // Already registered: release the duplicate slot.
                c.release_slot();
            } else {
                c.gate_in(seq, true);
            }
        }
    }
}

impl Drop for KprocToken {
    fn drop(&mut self) {
        if let Some(c) = self.clock.take() {
            c.release_slot();
        }
    }
}

/// The completion flag a kproc raises as its body returns; kept apart
/// from the OS `JoinHandle` so joins can wait on the virtual clock.
type DoneFlag = Arc<(crate::sync::Mutex<bool>, crate::sync::Condvar)>;

/// A handle to a kernel process spawned with [`kproc`].
pub struct KprocHandle<T> {
    inner: std::thread::JoinHandle<T>,
    done: DoneFlag,
}

impl<T> KprocHandle<T> {
    /// True once the kproc's OS thread has finished.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }

    /// Waits for the kproc to finish and returns its result.
    ///
    /// Under a virtual clock this is a *virtual* event: the caller
    /// parks on the clock until the kproc's body signals completion,
    /// so the join re-enters the deterministic sequence — unlike a raw
    /// OS join, which the scheduler cannot see. The trailing OS-thread
    /// reap is a bounded real wait: by the time the joiner is granted
    /// the CPU the kproc has already left the census, so the reap
    /// never depends on virtual progress.
    pub fn join(self) -> std::thread::Result<T> {
        {
            let (flag, cv) = &*self.done;
            let mut done = flag.lock();
            while !*done {
                cv.wait(&mut done);
            }
        }
        self.inner.join()
    }
}

/// Spawns a named kernel process registered with the virtual-time
/// census. In real-time mode this is exactly a named `std` thread
/// spawn. All kernel helper threads go through here so the clock's
/// scheduler sees every runnable thread.
pub fn kproc<T, F>(name: &str, f: F) -> std::io::Result<KprocHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let token = pre_register();
    let done: DoneFlag = Arc::new((crate::sync::Mutex::new(false), crate::sync::Condvar::new()));
    let done2 = Arc::clone(&done);
    let inner = std::thread::Builder::new().name(name.to_string()).spawn(move || {
        // Raised on every exit path — a panicking kproc must still wake
        // joiners parked on the virtual clock. The guard drops before
        // TLS destructors, so the census sees: signal, then unregister.
        struct Signal(DoneFlag);
        impl Drop for Signal {
            fn drop(&mut self) {
                *self.0 .0.lock() = true;
                self.0 .1.notify_all();
            }
        }
        token.adopt();
        let _signal = Signal(done2);
        f()
    })?;
    Ok(KprocHandle { inner, done })
}

/// Runs `f` with the calling thread removed from the census: use around
/// operations the clock cannot observe (joining a non-kproc OS thread,
/// blocking I/O), which would otherwise stall virtual time by holding
/// the CPU forever. Re-enters through the scheduler gate on the way
/// out, panic-safe. A no-op when the thread is unregistered or the
/// clock is real.
///
/// Note the re-entry point in the virtual sequence depends on when `f`
/// returns in *real* time; inside a deterministic scenario, prefer
/// [`KprocHandle::join`], which needs no escape hatch.
pub fn block_external<R>(f: impl FnOnce() -> R) -> R {
    struct Rereg(Option<Arc<VirtualClock>>);
    impl Drop for Rereg {
        fn drop(&mut self) {
            if let Some(c) = self.0.take() {
                let seq = {
                    let mut st = plock(&c.state);
                    st.registered += 1;
                    let seq = st.next_id;
                    st.next_id += 1;
                    seq
                };
                REG.with(|r| *r.borrow_mut() = Some(ThreadReg { clock: Arc::clone(&c) }));
                c.gate_in(seq, false);
            }
        }
    }
    let guard = Rereg(REG.with(|r| r.borrow_mut().take()).map(|t| {
        let c = Arc::clone(&t.clock);
        drop(t); // unregisters (and may advance the clock)
        c
    }));
    let out = f();
    drop(guard);
    out
}

/// A guard for an installed virtual clock; dropping it uninstalls the
/// clock and wakes every remaining waiter (timed waits report timeout,
/// untimed ones a notification) so the system can wind down in real
/// time.
pub struct VtGuard {
    clock: Arc<VirtualClock>,
}

impl VtGuard {
    /// The installed clock (for elapsed/advance readings).
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }
}

/// Installs a fresh virtual clock process-wide and registers the
/// calling thread with its census (holding the CPU grant). Panics if
/// one is already installed: virtual runs are process-global and must
/// not overlap (keep them in dedicated test binaries, serialized).
pub fn enter() -> VtGuard {
    // Retire real-mode pool/wheel service threads first: they were
    // spawned outside any census and would keep draining work (as
    // invisible aliens) once the clock is live. Fresh workers respawn
    // lazily inside the census on the next submit/schedule.
    retire_services();
    let clock = Arc::new(VirtualClock::new());
    {
        let mut cur = plock(&CLOCK);
        assert!(
            cur.is_none(),
            "vtime: a virtual clock is already installed"
        );
        *cur = Some(Arc::clone(&clock));
    }
    ACTIVE.store(true, Ordering::Release);
    {
        let mut st = plock(&clock.state);
        st.registered += 1;
        st.running += 1;
    }
    REG.with(|r| *r.borrow_mut() = Some(ThreadReg { clock: Arc::clone(&clock) }));
    // Sweep the transition window: between the retire above and the
    // install, a straggling real-mode thread (an in-flight close
    // handshake, a frame still on the wheel) may have called
    // schedule/submit and lazily spawned a worker stamped with the new
    // era — a real thread the census cannot see, which would service
    // virtual-era timers nondeterministically. Bump the era once more
    // and join any such worker; the virtual era's workers respawn
    // lazily inside the census on the next schedule/submit.
    retire_services();
    VtGuard { clock }
}

impl Drop for VtGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::Release);
        *plock(&CLOCK) = None;
        // Mark defunct before releasing the installer's census slot so
        // the unregister cannot fire a final grant mid-teardown.
        {
            let mut st = plock(&self.clock.state);
            st.defunct = true;
        }
        REG.with(|r| {
            let mut r = r.borrow_mut();
            if r.as_ref().is_some_and(|t| Arc::ptr_eq(&t.clock, &self.clock)) {
                *r = None; // drops the ThreadReg, unregistering
            }
        });
        // Wake everything still parked or queued; new waits take the
        // real path.
        let mut st = plock(&self.clock.state);
        let waiting: Vec<Arc<Parker>> = st.waiting.values().cloned().collect();
        for p in waiting {
            let timed_out = p.timed;
            wake_locked(&mut st, &p, timed_out);
        }
        let mut stranded: Vec<Arc<Parker>> = st.ready.drain(..).collect();
        stranded.append(&mut st.arrivals);
        for p in stranded {
            {
                let mut ps = plock(&p.state);
                ps.woken = true;
                ps.granted = true;
            }
            p.cv.notify_one();
        }
        st.timers.clear();
        drop(st);
        // Retire the census-era pool/wheel workers: the wakes above
        // released them from their parks, the era bump makes their
        // loops exit, and the joins below run in real time (the clock
        // is already uninstalled).
        retire_services();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Installing the global clock is reserved for dedicated integration
    // test binaries (tests/vtime.rs); in-crate tests only exercise the
    // pieces that need no global state.

    #[test]
    fn timer_heap_orders_by_deadline_then_seq() {
        let clock = Arc::new(VirtualClock::new());
        let mk = |seq: u64| {
            Arc::new(Parker {
                id: seq,
                counted: false,
                timed: true,
                clock: Arc::clone(&clock),
                state: StdMutex::new(ParkState {
                    woken: false,
                    timed_out: false,
                    granted: false,
                }),
                cv: StdCondvar::new(),
            })
        };
        let mut heap = BinaryHeap::new();
        for (at, seq) in [(50u64, 2u64), (10, 5), (50, 1), (10, 3)] {
            heap.push(TimerEntry {
                deadline_ns: at,
                seq,
                parker: mk(seq),
            });
        }
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.deadline_ns, e.seq))
            .collect();
        assert_eq!(order, vec![(10, 3), (10, 5), (50, 1), (50, 2)]);
    }

    #[test]
    fn unadopted_token_releases_its_slot() {
        // With no clock installed the token is inert.
        let t = pre_register();
        drop(t);
        assert!(active().is_none());
    }

    #[test]
    fn block_external_is_noop_when_unregistered() {
        assert_eq!(block_external(|| 7), 7);
    }
}
