//! A small, seedable, deterministic pseudo-random generator.
//!
//! [`SmallRng`] is a splitmix64 stream: one 64-bit state word, a
//! handful of operations per draw, and — the property netsim actually
//! needs — the same seed always yields the same loss/delay/corruption
//! decisions, on every platform, forever. This is a simulation RNG,
//! not a cryptographic one.

use std::ops::{Range, RangeInclusive};

/// A seedable splitmix64 generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed. Equal seeds produce
    /// identical streams.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// Draws the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Draws the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Draws a value uniformly from `range` (a half-open or inclusive
    /// integer range, or a half-open `f64` range).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A range [`SmallRng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The element type the range yields.
    type Output;
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u8..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(0..=255u8);
            let _ = v; // full u8 range: any value is valid
            let v = rng.gen_range(5usize..6);
            assert_eq!(v, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!(!SmallRng::seed_from_u64(1).gen_bool(0.0));
        assert!(SmallRng::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle left order intact");
    }
}
