//! A minimal micro-benchmark harness for the `harness = false` bench
//! targets in `crates/bench`.
//!
//! Each bench calibrates an iteration count against a wall-clock budget
//! (`P9_BENCH_MS` per bench, default 100 ms), runs it, and prints
//! ns/iteration plus MB/s when a throughput is declared. Setting
//! `P9_BENCH=skip` makes every bench a single-iteration smoke run, so
//! the targets stay cheap to execute in CI while still compiling and
//! exercising their code paths.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The per-process harness: owns output and the skip/budget settings.
pub struct Harness {
    budget: Duration,
    skip: bool,
}

impl Harness {
    /// Creates a harness, reading `P9_BENCH` and `P9_BENCH_MS`.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Harness {
        let skip = matches!(
            std::env::var("P9_BENCH").as_deref(),
            Ok("skip") | Ok("0") | Ok("off")
        );
        let ms = std::env::var("P9_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        Harness {
            budget: Duration::from_millis(ms),
            skip,
        }
    }

    /// Runs one named bench.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        self.run(id, None, f);
    }

    /// Opens a named group; benches in it print as `group/id`.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn run(&mut self, id: &str, throughput: Option<u64>, mut f: impl FnMut(&mut Bencher)) {
        // Calibrate: one iteration, then scale to the budget.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let iters = if self.skip {
            1
        } else {
            let per_iter = b.elapsed.max(Duration::from_nanos(1));
            (self.budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64
        };
        b.iters = iters;
        f(&mut b);
        let ns_per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
        let rate = throughput.map(|bytes| {
            let secs = ns_per_iter / 1e9;
            bytes as f64 / secs / 1e6
        });
        match rate {
            Some(mb_s) => println!(
                "bench  {id:<40} {ns_per_iter:>12.1} ns/iter  {mb_s:>10.1} MB/s  ({iters} iters)"
            ),
            None => println!("bench  {id:<40} {ns_per_iter:>12.1} ns/iter  ({iters} iters)"),
        }
    }
}

/// A bench group: shares a name prefix and an optional throughput.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    throughput: Option<u64>,
}

impl Group<'_> {
    /// Declares that each iteration of subsequent benches moves `bytes`
    /// bytes, enabling the MB/s column.
    pub fn throughput_bytes(&mut self, bytes: u64) {
        self.throughput = Some(bytes);
    }

    /// Runs one named bench inside the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        self.harness.run(&full, self.throughput, f);
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each bench closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("P9_BENCH", "skip");
        let mut h = Harness::new();
        let mut runs = 0u64;
        h.bench_function("noop", |b| b.iter(|| runs += 1));
        // Calibration pass + measured pass, one iteration each when
        // skipping.
        assert_eq!(runs, 2);
        let mut g = h.benchmark_group("grp");
        g.throughput_bytes(4096);
        g.bench_function("move", |b| b.iter(|| black_box([0u8; 64])));
        g.finish();
    }
}
