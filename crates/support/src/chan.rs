//! Multi-producer multi-consumer channels over a mutex-protected deque.
//!
//! The surface mirrors the slice of `crossbeam::channel` the workspace
//! uses: [`bounded`]/[`unbounded`] constructors, cloneable [`Sender`]s
//! and [`Receiver`]s (both `Send + Sync`, so they can live behind an
//! `Arc` field), blocking `send`/`recv`, `try_send`/`try_recv`, and
//! `recv_timeout`. Disconnection follows the usual rule: receivers
//! drain what remains after the last sender drops, senders fail once
//! the last receiver is gone.
//!
//! Channels are built on [`sync`](crate::sync) rather than raw `std`
//! locks so every blocking channel wait is visible to the
//! [`vtime`](crate::vtime) census: a thread blocked in `recv` counts as
//! parked, and `recv_timeout` deadlines become virtual timers.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::sync::{Condvar, Mutex, MutexGuard};

/// Sending on a channel with no receivers left; returns the message.
pub struct SendError<T>(pub T);

/// A non-blocking send that could not complete.
pub enum TrySendError<T> {
    /// The bounded queue is at capacity.
    Full(T),
    /// No receivers are left.
    Disconnected(T),
}

/// Receiving on an empty channel with no senders left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// A non-blocking receive that produced nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// The queue is empty and no senders are left.
    Disconnected,
}

/// A timed receive that produced nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed first.
    Timeout,
    /// The queue is empty and no senders are left.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    /// `None` means unbounded.
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock()
    }
}

/// The sending half of a channel. Cloning adds a producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloning adds a consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel whose queue holds at most `cap` messages; `send`
/// blocks while it is full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_cap(Some(cap.max(1)))
}

/// Creates a channel with an unbounded queue; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded queue is full. Fails only
    /// when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match st.cap {
                Some(cap) if st.queue.len() >= cap => {
                    self.shared.not_full.wait(&mut st);
                }
                _ => {
                    st.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Sends without blocking; a full bounded queue refuses the message.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = st.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks for the next message; fails once the queue is empty and
    /// every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            self.shared.not_empty.wait(&mut st);
        }
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        if let Some(v) = st.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks for the next message until `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = crate::time::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            if self
                .shared
                .not_empty
                .wait_until(&mut st, deadline)
                .timed_out()
            {
                // One last look: a racing send may have queued a value
                // right as the deadline fired.
                return match st.queue.pop_front() {
                    Some(v) => {
                        self.shared.not_full.notify_one();
                        Ok(v)
                    }
                    None => Err(RecvTimeoutError::Timeout),
                };
            }
        }
    }

    /// How many messages are queued right now.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn drain_after_sender_drop_then_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receiver() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(h.join().unwrap());
    }

    #[test]
    fn recv_timeout_reports_timeout_then_value() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
