//! Byte buffers: the small slice of the `bytes` crate surface that
//! protocol codecs want — append-only integer/slice writers on
//! [`BytesMut`], cursor-style readers, cheap splitting, and frozen
//! shared [`Bytes`] views backed by one allocation.

use crate::copysite::Site;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

static SPLIT_SITE: Site = Site::new("buf.split");
static FREEZE_SITE: Site = Site::new("buf.freeze");
static FROM_SLICE_SITE: Site = Site::new("buf.from_slice");

/// A growable byte buffer with a read cursor.
///
/// Writers append with the `put_*` methods; readers consume from the
/// front with the `get_*` methods and [`BytesMut::advance`]. `Deref`
/// exposes the unread remainder as a `&[u8]`.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    read: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.read
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Alias for [`BytesMut::remaining`], matching slice naming.
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// Appends a byte slice.
    pub fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Consumes and discards `n` bytes from the front.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of buffer");
        self.read += n;
    }

    /// Consumes one byte; `None` when empty.
    pub fn get_u8(&mut self) -> Option<u8> {
        let v = *self.as_slice().first()?;
        self.read += 1;
        Some(v)
    }

    /// Splits off and returns the first `n` unread bytes as a new
    /// buffer, consuming them from `self`.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.remaining(), "split_to past end of buffer");
        SPLIT_SITE.record(n);
        let head = self.as_slice()[..n].to_vec();
        self.read += n;
        BytesMut {
            data: head,
            read: 0,
        }
    }

    /// Freezes the unread remainder into an immutable, cheaply
    /// cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        FREEZE_SITE.record(self.remaining());
        let slice: Arc<[u8]> = self.as_slice().into();
        let end = slice.len();
        Bytes {
            data: slice,
            start: 0,
            end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.read..]
    }
}

macro_rules! impl_int_put_get {
    ($($t:ty => $put_be:ident $put_le:ident $get_be:ident $get_le:ident),+ $(,)?) => {$(
        impl BytesMut {
            /// Appends the integer in big-endian (network) order.
            pub fn $put_be(&mut self, v: $t) {
                self.data.extend_from_slice(&v.to_be_bytes());
            }
            /// Appends the integer in little-endian order.
            pub fn $put_le(&mut self, v: $t) {
                self.data.extend_from_slice(&v.to_le_bytes());
            }
            /// Consumes a big-endian integer; `None` if too few bytes remain.
            pub fn $get_be(&mut self) -> Option<$t> {
                const N: usize = std::mem::size_of::<$t>();
                let bytes: [u8; N] = self.as_slice().get(..N)?.try_into().ok()?;
                self.read += N;
                Some(<$t>::from_be_bytes(bytes))
            }
            /// Consumes a little-endian integer; `None` if too few bytes remain.
            pub fn $get_le(&mut self) -> Option<$t> {
                const N: usize = std::mem::size_of::<$t>();
                let bytes: [u8; N] = self.as_slice().get(..N)?.try_into().ok()?;
                self.read += N;
                Some(<$t>::from_le_bytes(bytes))
            }
        }
    )+};
}

impl_int_put_get! {
    u16 => put_u16 put_u16_le get_u16 get_u16_le,
    u32 => put_u32 put_u32_le get_u32 get_u32_le,
    u64 => put_u64 put_u64_le get_u64 get_u64_le,
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        FROM_SLICE_SITE.record(src.len());
        BytesMut {
            data: src.to_vec(),
            read: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data, read: 0 }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:02x?})", self.as_slice())
    }
}

/// An immutable view into shared byte storage. Cloning and slicing are
/// O(1): every view holds the same `Arc` allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a view over a copy of `src`.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        BytesMut::from(src).freeze()
    }

    /// Length of this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this view, sharing the same storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:02x?})", &**self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip_mixed_endian() {
        let mut b = BytesMut::new();
        b.put_u8(0x7f);
        b.put_u16(0xbeef);
        b.put_u32_le(0xdead_beef);
        b.put_u64(42);
        b.put_slice(b"tail");
        assert_eq!(b.get_u8(), Some(0x7f));
        assert_eq!(b.get_u16(), Some(0xbeef));
        assert_eq!(b.get_u32_le(), Some(0xdead_beef));
        assert_eq!(b.get_u64(), Some(42));
        assert_eq!(&*b, b"tail");
        assert_eq!(b.get_u64(), None, "short reads must not consume");
        assert_eq!(b.remaining(), 4);
    }

    #[test]
    fn split_and_advance() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let head = b.split_to(5);
        assert_eq!(&*head, b"hello");
        b.advance(1);
        assert_eq!(&*b, b"world");
    }

    #[test]
    fn freeze_shares_storage() {
        let mut b = BytesMut::new();
        b.put_slice(b"abcdef");
        let frozen = b.freeze();
        let mid = frozen.slice(2..4);
        assert_eq!(&*mid, b"cd");
        assert_eq!(frozen.len(), 6);
        assert!(mid == *b"cd".as_slice());
    }
}
