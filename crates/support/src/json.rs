//! Minimal JSON emission: string quoting.
//!
//! The benchmarks and examples emit machine-readable results without a
//! serialization dependency; composing objects and arrays with
//! `format!` is fine as long as strings are quoted correctly, which is
//! the one part worth owning in a single place.

/// Returns `s` as a quoted JSON string, escaping the characters JSON
/// requires (quote, backslash, and control characters).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_are_just_quoted() {
        assert_eq!(quote("il/0"), "\"il/0\"");
    }

    #[test]
    fn specials_are_escaped() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }
}
