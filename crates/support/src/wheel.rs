//! The shared timer wheel: one thread arms every protocol timer.
//!
//! IL and TCP used to spawn a polling `il-timer`/`tcp-timer` kproc per
//! conversation — 10k conversations meant 10k threads, each waking
//! every few milliseconds whether or not anything was due. The wheel
//! inverts that: conversations [`schedule`] a deadline callback keyed
//! by conversation id, a single wheel thread sleeps until the
//! *earliest* deadline (a virtual park under vtime, so an idle fabric
//! generates zero clock ticks), and due callbacks are dispatched to
//! the [`pool`](crate::pool) shard for their key, which serializes all
//! of a conversation's service work.
//!
//! Deadlines are kept in a `BTreeMap` ordered by `(deadline, seq)`:
//! firing order at equal deadlines is insertion order, deterministic
//! under the virtual clock. [`cancel`] is O(log n) by [`TimerId`].
//!
//! The wheel thread is era-stamped and retired at clock transitions
//! exactly like the pool workers (see [`pool`](crate::pool) for the
//! rationale); pending timers survive a transition and re-arm the next
//! era's wheel thread on the following [`schedule`].
//!
//! Lock order: `support.wheel` is a leaf. Due entries are collected
//! under the lock but *fired* after it is released, so a callback may
//! freely take conversation locks and re-schedule.

use crate::sync::{Condvar, Mutex};
use crate::time;
use crate::vtime;
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

type Callback = Box<dyn FnOnce() + Send + 'static>;

/// Identifies a scheduled timer for [`cancel`]. The pair is the map
/// key: the deadline plus a global sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerId {
    deadline: Instant,
    seq: u64,
}

impl TimerId {
    /// The instant this timer is armed to fire at.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

struct Entry {
    /// Pool shard key (conversation id): the callback runs on this
    /// key's shard so it serializes with the conversation's other
    /// service jobs.
    key: u64,
    cb: Callback,
}

struct WheelState {
    timers: BTreeMap<(Instant, u64), Entry>,
    next_seq: u64,
    worker: Option<(u64, vtime::KprocHandle<()>)>,
}

struct Wheel {
    state: Mutex<WheelState>,
    cv: Condvar,
}

fn wheel() -> &'static Wheel {
    static WHEEL: OnceLock<Wheel> = OnceLock::new();
    WHEEL.get_or_init(|| Wheel {
        state: Mutex::named(
            WheelState { timers: BTreeMap::new(), next_seq: 0, worker: None },
            "support.wheel",
        ),
        cv: Condvar::new(),
    })
}

/// Arms a callback to fire at `deadline`, dispatched to the pool shard
/// for `key`. Returns a [`TimerId`] for [`cancel`]. Fails only if the
/// wheel thread needed spawning and the spawn failed — dial/announce
/// paths surface that as a connection error.
pub fn schedule(
    key: u64,
    deadline: Instant,
    cb: impl FnOnce() + Send + 'static,
) -> io::Result<TimerId> {
    let w = wheel();
    let mut st = w.state.lock();
    ensure_worker(&mut st)?;
    let seq = st.next_seq;
    st.next_seq += 1;
    let earliest_before = st.timers.keys().next().copied();
    st.timers.insert((deadline, seq), Entry { key, cb: Box::new(cb) });
    let is_new_earliest = earliest_before.is_none_or(|k| (deadline, seq) < k);
    drop(st);
    SCHEDULED.fetch_add(1, Ordering::Relaxed);
    if is_new_earliest {
        // The wheel thread is parked until the old earliest deadline;
        // an earlier arrival must re-aim its sleep.
        w.cv.notify_all();
    }
    Ok(TimerId { deadline, seq })
}

/// Disarms a timer. Returns false if it already fired (or was
/// cancelled); the callback may still be running on its shard.
pub fn cancel(id: TimerId) -> bool {
    let hit = wheel().state.lock().timers.remove(&(id.deadline, id.seq)).is_some();
    if hit {
        CANCELLED.fetch_add(1, Ordering::Relaxed);
    }
    hit
}

/// Number of armed timers (diagnostics).
pub fn armed() -> usize {
    wheel().state.lock().timers.len()
}

/// Lifetime wheel counters, process-global like the wheel itself.
/// Observers snapshot and report deltas (see netlog's `pool` facility).
static SCHEDULED: AtomicU64 = AtomicU64::new(0);
static FIRED: AtomicU64 = AtomicU64::new(0);
static CANCELLED: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the wheel's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Timers armed over the wheel's lifetime.
    pub scheduled: u64,
    /// Timers whose callbacks were dispatched.
    pub fired: u64,
    /// Timers disarmed before firing.
    pub cancelled: u64,
    /// Timers currently armed.
    pub armed: u64,
}

/// Snapshots the wheel counters (diagnostics).
pub fn stats() -> WheelStats {
    WheelStats {
        scheduled: SCHEDULED.load(Ordering::Relaxed),
        fired: FIRED.load(Ordering::Relaxed),
        cancelled: CANCELLED.load(Ordering::Relaxed),
        armed: armed() as u64,
    }
}

fn ensure_worker(st: &mut WheelState) -> io::Result<()> {
    let era = vtime::era();
    match &st.worker {
        Some((e, _)) if *e == era => Ok(()),
        _ => {
            // blocking-ok: the closure runs on the spawned timer-wheel
            // kproc, not in the caller's context; checked: likewise,
            // a panic there unwinds the wheel kproc, not the caller
            let handle = vtime::kproc("timer-wheel", move || wheel_loop(era))?;
            st.worker = Some((era, handle));
            Ok(())
        }
    }
}

fn wheel_loop(my_era: u64) {
    let w = wheel();
    let mut st = w.state.lock();
    loop {
        if vtime::era() != my_era {
            return;
        }
        let now = time::now();
        // Collect everything due, in (deadline, seq) order, then fire
        // with the lock released so callbacks can take conversation
        // locks and re-schedule.
        let mut due: Vec<Entry> = Vec::new();
        while let Some((&(d, s), _)) = st.timers.iter().next() {
            if d > now {
                break;
            }
            due.push(st.timers.remove(&(d, s)).expect("due timer present"));
        }
        if !due.is_empty() {
            drop(st);
            FIRED.fetch_add(due.len() as u64, Ordering::Relaxed);
            for e in due {
                // Per-conversation ordering: the callback runs on the
                // key's pool shard. If the pool can't spawn its
                // worker, fire inline — a late ack beats a lost one.
                crate::pool::submit_or_run(e.key, e.cb);
            }
            st = w.state.lock();
            continue;
        }
        match st.timers.keys().next().copied() {
            Some((d, _)) => {
                let _ = w.cv.wait_until(&mut st, d);
            }
            None => w.cv.wait(&mut st),
        }
    }
}

/// Joins a previous era's wheel thread; see
/// [`pool::retire`](crate::pool) for the transition protocol.
pub(crate) fn retire() {
    let era = vtime::era();
    let handle = {
        let mut st = wheel().state.lock();
        match &st.worker {
            Some((e, _)) if *e != era => st.worker.take().map(|(_, h)| h),
            _ => None,
        }
    };
    wheel().cv.notify_all();
    if let Some(h) = handle {
        let _ = h.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fires_in_deadline_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        let base = time::now() + Duration::from_millis(30);
        // Insert out of order; equal deadlines must fire in insert
        // order. Same key ⇒ same shard ⇒ the pool preserves FIFO.
        for (label, dt) in [(2u32, 10u64), (0, 0), (3, 10), (1, 0)] {
            let log = Arc::clone(&log);
            let done = Arc::clone(&done);
            schedule(42, base + Duration::from_millis(dt), move || {
                log.lock().push(label);
                let (cnt, cv) = &*done;
                *cnt.lock() += 1;
                cv.notify_all();
            })
            .expect("schedule");
        }
        let (cnt, cv) = &*done;
        let mut g = cnt.lock();
        while *g < 4 {
            cv.wait(&mut g);
        }
        drop(g);
        let got = log.lock().clone();
        // (0ms: labels 0 then 1 by insert order), (10ms: 2 then 3).
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cancel_prevents_fire() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        let id = schedule(1, time::now() + Duration::from_millis(40), move || {
            h2.fetch_add(1, Ordering::SeqCst);
        })
        .expect("schedule");
        assert!(cancel(id), "fresh timer cancels");
        assert!(!cancel(id), "second cancel reports gone");
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(hits.load(Ordering::SeqCst), 0, "cancelled timer must not fire");
    }

    #[test]
    fn earlier_insert_reaims_the_sleep() {
        let done = Arc::new((Mutex::new(Vec::new()), Condvar::new()));
        let d1 = Arc::clone(&done);
        schedule(5, time::now() + Duration::from_millis(500), move || {
            let (log, cv) = &*d1;
            log.lock().push("late");
            cv.notify_all();
        })
        .expect("late");
        let d2 = Arc::clone(&done);
        let t0 = time::real_now();
        schedule(5, time::now() + Duration::from_millis(20), move || {
            let (log, cv) = &*d2;
            log.lock().push("early");
            cv.notify_all();
        })
        .expect("early");
        let (log, cv) = &*done;
        let mut g = log.lock();
        while g.is_empty() {
            cv.wait(&mut g);
        }
        assert_eq!(g[0], "early");
        assert!(
            t0.elapsed() < Duration::from_millis(450),
            "the wheel must re-aim at the earlier deadline, not sleep out the late one"
        );
    }
}
