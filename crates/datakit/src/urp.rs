//! URP: the Universal Receiver Protocol, Datakit's error-recovery and
//! flow-control layer.
//!
//! URP moves *cells* over a circuit. Each data cell carries a 3-bit
//! sequence number; at most [`URP_WINDOW`] cells are outstanding. The
//! sender probes with **ENQ** cells; the receiver answers with **ECHO**
//! carrying the sequence number it expects next, and the sender rewinds
//! and retransmits from there (go-back). Out-of-sequence arrivals elicit
//! a **REJ**. The last cell of a user message is flagged **EOM**, so
//! message boundaries survive — the property 9P demands.

use plan9_support::sync::{Condvar, Mutex};
use plan9_support::{time, vtime};
use plan9_netsim::fabric::{Circuit, DatakitLine, IncomingCall};
use plan9_netsim::wire::RecvOutcome;
use plan9_ninep::NineError;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outstanding-cell window; 7 so sequence arithmetic mod 8 stays
/// unambiguous.
pub const URP_WINDOW: usize = 7;

/// Cell control-byte layout: low 3 bits sequence, high bits type.
const T_DATA: u8 = 0x00;
const T_DATA_EOM: u8 = 0x08;
const T_ENQ: u8 = 0x10;
const T_ECHO: u8 = 0x20;
const T_REJ: u8 = 0x30;
const T_CLOSE: u8 = 0x40;
const TYPE_MASK: u8 = 0x78;
const SEQ_MASK: u8 = 0x07;

/// How long the sender waits for an ECHO before re-probing.
const ENQ_TIMEOUT: Duration = Duration::from_millis(40);
const MAX_PROBES: u32 = 200;
/// The receiver volunteers an ECHO after this many data cells even
/// without an ENQ, so the sender's window drains during bulk transfers.
const ECHO_EVERY: u8 = 4;

/// Counters for the Datakit row of the benchmarks.
#[derive(Default)]
pub struct UrpStats {
    /// Data cells sent (first transmissions).
    pub tx_cells: AtomicU64,
    /// Data cells retransmitted after a rewind.
    pub retransmit_cells: AtomicU64,
    /// ENQ probes sent.
    pub enqs: AtomicU64,
    /// REJ cells sent for out-of-sequence arrivals.
    pub rejs: AtomicU64,
}

struct SendState {
    /// Next sequence number to assign.
    next_seq: u8,
    /// Unacked cells, oldest first: (seq, full cell bytes).
    unacked: VecDeque<(u8, Vec<u8>)>,
    /// Set when an ECHO arrives.
    echo_seen: Option<u8>,
    /// The previous probe's echo, for stall detection.
    prev_echo: Option<u8>,
    /// When we last rewound, to damp retransmission storms.
    last_rewind: Option<Instant>,
    closed: bool,
    err: Option<String>,
}

/// Applies a cumulative acknowledgment: the receiver expects `e` next,
/// so every queued cell strictly before `e` (in queue order) is done.
/// An `e` that is neither in the queue nor equal to the next sequence to
/// be assigned is stale and ignored.
fn ack_upto(send: &mut SendState, e: u8) {
    if let Some(k) = send.unacked.iter().position(|(s, _)| *s == e) {
        send.unacked.drain(..k);
    } else if e == send.next_seq {
        send.unacked.clear();
    }
    // Otherwise: stale echo; leave the queue alone.
}

struct RecvState {
    expected: u8,
    assembly: Vec<u8>,
    messages: VecDeque<Vec<u8>>,
    hungup: bool,
    cells_since_echo: u8,
    /// When we last rejected, to damp REJ storms.
    last_rej: Option<Instant>,
}

/// One end of a URP conversation.
pub struct UrpConn {
    circuit: Arc<Circuit>,
    send: Mutex<SendState>,
    echo_cv: Condvar,
    recv: Mutex<RecvState>,
    recv_cv: Condvar,
    /// Traffic counters.
    pub stats: UrpStats,
    /// Per-cell payload capacity on this circuit.
    cell_payload: usize,
}

impl UrpConn {
    /// Wraps an established circuit in URP and starts the receive
    /// process.
    pub fn new(circuit: Circuit) -> Arc<UrpConn> {
        let cell_payload = circuit.mtu().saturating_sub(1).max(16);
        let conn = Arc::new(UrpConn {
            circuit: Arc::new(circuit),
            send: Mutex::new(SendState {
                next_seq: 0,
                unacked: VecDeque::new(),
                echo_seen: None,
                prev_echo: None,
                last_rewind: None,
                closed: false,
                err: None,
            }),
            echo_cv: Condvar::new(),
            recv: Mutex::new(RecvState {
                expected: 0,
                assembly: Vec::new(),
                messages: VecDeque::new(),
                hungup: false,
                cells_since_echo: 0,
                last_rej: None,
            }),
            recv_cv: Condvar::new(),
            stats: UrpStats::default(),
            cell_payload,
        });
        let rx = Arc::clone(&conn);
        vtime::kproc("urp-rx", move || rx.input_loop()).expect("spawn urp rx");
        let prober = Arc::clone(&conn);
        vtime::kproc("urp-probe", move || prober.probe_loop()).expect("spawn urp prober");
        conn
    }

    /// The enquiry kernel process: if cells sit unacknowledged past the
    /// timeout, probe with ENQ; the ECHO reply (or REJ) repairs.
    fn probe_loop(self: Arc<Self>) {
        let mut idle = Duration::ZERO;
        loop {
            time::sleep(Duration::from_millis(10));
            let (has_unacked, closed, next) = {
                let send = self.send.lock();
                (!send.unacked.is_empty(), send.closed, send.next_seq)
            };
            if closed {
                return;
            }
            if !has_unacked {
                idle = Duration::ZERO;
                continue;
            }
            idle += Duration::from_millis(10);
            if idle >= ENQ_TIMEOUT {
                idle = Duration::ZERO;
                self.stats.enqs.fetch_add(1, Ordering::Relaxed);
                let _ = self.circuit.send(&[T_ENQ | next]);
            }
        }
    }

    /// The local Datakit address.
    pub fn local_addr(&self) -> String {
        self.circuit.local_addr().to_string()
    }

    /// The remote Datakit address.
    pub fn remote_addr(&self) -> String {
        self.circuit.remote_addr().to_string()
    }

    /// A status line for the `status` file.
    pub fn status_string(&self) -> String {
        let send = self.send.lock();
        let state = if send.closed { "Hungup" } else { "Established" };
        format!(
            "{} unacked {} window {}",
            state,
            send.unacked.len(),
            URP_WINDOW
        )
    }

    /// The receive kernel process: dispatches cells from the circuit.
    fn input_loop(self: Arc<Self>) {
        loop {
            let cell = match self.circuit.recv_timeout(Duration::from_millis(50)) {
                RecvOutcome::Frame(f) => f,
                RecvOutcome::TimedOut => {
                    if self.send.lock().closed && self.recv.lock().hungup {
                        return;
                    }
                    continue;
                }
                RecvOutcome::Hangup => {
                    {
                        let mut recv = self.recv.lock();
                        recv.hungup = true;
                    }
                    {
                        let mut send = self.send.lock();
                        send.closed = true;
                        if send.err.is_none() {
                            send.err = Some("hungup".to_string());
                        }
                    }
                    self.recv_cv.notify_all();
                    self.echo_cv.notify_all();
                    return;
                }
            };
            let Some(&ctl) = cell.first() else { continue };
            let seq = ctl & SEQ_MASK;
            match ctl & TYPE_MASK {
                T_DATA | T_DATA_EOM => self.accept_data(seq, ctl & TYPE_MASK == T_DATA_EOM, &cell[1..]),
                T_ENQ => {
                    // Tell the sender what we expect next.
                    let expected = self.recv.lock().expected;
                    let _ = self.circuit.send(&[T_ECHO | expected]);
                }
                T_ECHO => {
                    let stalled_gap = {
                        let mut send = self.send.lock();
                        send.echo_seen = Some(seq);
                        ack_upto(&mut send, seq);
                        // Two consecutive echoes naming the same
                        // still-outstanding cell mean it was lost, not
                        // merely in flight.
                        let gap = send.unacked.iter().any(|(s, _)| *s == seq);
                        let stalled = send.prev_echo == Some(seq);
                        send.prev_echo = Some(seq);
                        self.echo_cv.notify_all();
                        gap && stalled
                    };
                    if stalled_gap {
                        self.rewind_from(seq);
                    }
                }
                T_REJ => {
                    // Receiver is missing from `seq`: rewind.
                    self.rewind_from(seq);
                }
                T_CLOSE => {
                    {
                        let mut recv = self.recv.lock();
                        recv.hungup = true;
                    }
                    {
                        let mut send = self.send.lock();
                        send.closed = true;
                    }
                    self.recv_cv.notify_all();
                    self.echo_cv.notify_all();
                    return;
                }
                _ => {}
            }
        }
    }

    fn accept_data(&self, seq: u8, eom: bool, payload: &[u8]) {
        let mut recv = self.recv.lock();
        if seq != recv.expected {
            // Out of sequence: ask for a rewind (Datakit circuits do not
            // reorder, so this means loss) — but at most one REJ per
            // repair interval, or duplicates breed duplicates.
            let damped = recv
                .last_rej
                .map(|at| time::now().saturating_duration_since(at) < Duration::from_millis(15))
                .unwrap_or(false);
            if !damped {
                recv.last_rej = Some(time::now());
                self.stats.rejs.fetch_add(1, Ordering::Relaxed);
                let expected = recv.expected;
                drop(recv);
                let _ = self.circuit.send(&[T_REJ | expected]);
            }
            return;
        }
        recv.expected = (recv.expected + 1) & SEQ_MASK;
        recv.assembly.extend_from_slice(payload);
        recv.cells_since_echo += 1;
        // Volunteer an ECHO every few cells so bulk windows drain, but
        // not on every message end — a lone ECHO ahead of the reply data
        // would serialize on the line and inflate round trips. Straggler
        // acknowledgments are the prober's job.
        let volunteer = recv.cells_since_echo >= ECHO_EVERY;
        if volunteer {
            recv.cells_since_echo = 0;
        }
        let expected = recv.expected;
        if eom {
            let msg = std::mem::take(&mut recv.assembly);
            recv.messages.push_back(msg);
            self.recv_cv.notify_all();
        }
        drop(recv);
        if volunteer {
            // Volunteer an ECHO so the sender's window keeps moving
            // without waiting for an enquiry.
            let _ = self.circuit.send(&[T_ECHO | expected]);
        }
    }

    fn rewind_from(&self, seq: u8) {
        let mut send = self.send.lock();
        // Ignore the request unless `seq` is actually outstanding;
        // echoes and REJs arrive late when the gap was already repaired,
        // and mod-8 arithmetic cannot order a stale value.
        if !send.unacked.iter().any(|(s, _)| *s == seq) {
            return;
        }
        // Damping: one rewind per repair interval. A storm of REJs must
        // not multiply duplicates — that is the §3 congestion lesson.
        if let Some(at) = send.last_rewind {
            if time::now().saturating_duration_since(at) < Duration::from_millis(15) {
                return;
            }
        }
        send.last_rewind = Some(time::now());
        let cells: Vec<Vec<u8>> = send
            .unacked
            .iter()
            .skip_while(|(s, _)| *s != seq)
            .map(|(_, c)| c.clone())
            .collect();
        self.stats
            .retransmit_cells
            .fetch_add(cells.len() as u64, Ordering::Relaxed);
        drop(send);
        for c in cells {
            let _ = self.circuit.send(&c);
        }
    }

    /// Sends one message, splitting it into cells and recovering from
    /// loss; blocks until the whole message is acknowledged.
    pub fn send(&self, msg: &[u8]) -> crate::Result<()> {
        // Empty messages still need one (empty) EOM cell.
        let chunks: Vec<&[u8]> = if msg.is_empty() {
            vec![&msg[0..0]]
        } else {
            msg.chunks(self.cell_payload).collect()
        };
        let n = chunks.len();
        for (i, chunk) in chunks.into_iter().enumerate() {
            let eom = i + 1 == n;
            // Wait for a window slot.
            {
                let mut send = self.send.lock();
                while send.unacked.len() >= URP_WINDOW && !send.closed {
                    // Probe and wait: the window opens when an ECHO lands.
                    drop(send);
                    self.probe_and_wait(false)?;
                    send = self.send.lock();
                }
                if send.closed {
                    return Err(NineError::new(
                        send.err.clone().unwrap_or_else(|| "hungup".to_string()),
                    ));
                }
                let seq = send.next_seq;
                send.next_seq = (send.next_seq + 1) & SEQ_MASK;
                let mut cell = Vec::with_capacity(1 + chunk.len());
                cell.push(if eom { T_DATA_EOM } else { T_DATA } | seq);
                cell.extend_from_slice(chunk);
                send.unacked.push_back((seq, cell.clone()));
                self.stats.tx_cells.fetch_add(1, Ordering::Relaxed);
                drop(send);
                self.circuit.send(&cell).map_err(NineError::new)?;
            }
        }
        // The message is on the wire; the probe process and the
        // receiver's volunteered ECHOs finish the acknowledgment
        // asynchronously, so back-to-back sends pipeline.
        Ok(())
    }

    /// Blocks until every sent cell has been acknowledged (used by
    /// close and by tests that need a quiescent line).
    pub fn drain(&self) -> crate::Result<()> {
        for _ in 0..MAX_PROBES {
            {
                let send = self.send.lock();
                if send.unacked.is_empty() {
                    return Ok(());
                }
                if send.closed {
                    return Err(NineError::new("hungup"));
                }
            }
            self.probe_and_wait(true)?;
        }
        Err(NineError::new("urp: drain failed"))
    }

    /// Probes with ENQ until there is progress: room in the window, or
    /// a fully drained queue when `until_empty` is set. Only consecutive
    /// *silent* rounds count against the retry bound.
    fn probe_and_wait(&self, until_empty: bool) -> crate::Result<()> {
        let done = |send: &SendState| {
            if until_empty {
                send.unacked.is_empty()
            } else {
                send.unacked.len() < URP_WINDOW
            }
        };
        let mut silent_rounds = 0u32;
        while silent_rounds < MAX_PROBES {
            {
                let send = self.send.lock();
                if send.closed {
                    return Err(NineError::new("hungup"));
                }
                if done(&send) {
                    return Ok(());
                }
            }
            self.stats.enqs.fetch_add(1, Ordering::Relaxed);
            let next = self.send.lock().next_seq;
            self.circuit.send(&[T_ENQ | next]).map_err(NineError::new)?;
            let deadline = time::now() + ENQ_TIMEOUT * (1 + silent_rounds / 8);
            let mut send = self.send.lock();
            send.echo_seen = None;
            loop {
                if send.closed || done(&send) {
                    return Ok(());
                }
                if let Some(_echo) = send.echo_seen.take() {
                    // Progress or repair is the input process's business
                    // (stall-rewind lives in the ECHO handler); any echo
                    // resets the silence counter.
                    silent_rounds = 0;
                    break;
                }
                if self.echo_cv.wait_until(&mut send, deadline).timed_out() {
                    silent_rounds += 1;
                    break;
                }
            }
        }
        Err(NineError::new("urp: too many retries"))
    }

    /// Blocks for the next message; `None` is EOF/hangup.
    pub fn recv(&self) -> Option<Vec<u8>> {
        let mut recv = self.recv.lock();
        loop {
            if let Some(msg) = recv.messages.pop_front() {
                return Some(msg);
            }
            if recv.hungup {
                return None;
            }
            self.recv_cv.wait(&mut recv);
        }
    }

    /// Waits for a message until the timeout elapses.
    #[allow(clippy::result_unit_err)] // the unit error *is* the timeout; no detail to carry
    pub fn recv_timeout(&self, d: Duration) -> Result<Option<Vec<u8>>, ()> {
        let deadline = time::now() + d;
        let mut recv = self.recv.lock();
        loop {
            if let Some(msg) = recv.messages.pop_front() {
                return Ok(Some(msg));
            }
            if recv.hungup {
                return Ok(None);
            }
            if self.recv_cv.wait_until(&mut recv, deadline).timed_out() {
                return Err(());
            }
        }
    }

    /// Closes the conversation, after draining outstanding cells.
    pub fn close(&self) {
        let _ = self.drain();
        let _ = self.circuit.send(&[T_CLOSE]);
        {
            let mut send = self.send.lock();
            send.closed = true;
        }
        {
            let mut recv = self.recv.lock();
            recv.hungup = true;
        }
        self.echo_cv.notify_all();
        self.recv_cv.notify_all();
    }
}

/// Dials a Datakit destination (`nj/astro/helix!9fs`) and wraps the
/// circuit in URP.
pub fn urp_dial(line: &DatakitLine, dest: &str) -> crate::Result<Arc<UrpConn>> {
    let circuit = line.dial(dest).map_err(NineError::new)?;
    Ok(UrpConn::new(circuit))
}

/// A URP listener on a Datakit line.
pub struct UrpListener {
    line: DatakitLine,
}

impl UrpListener {
    /// Wraps a line for accepting calls.
    pub fn new(line: DatakitLine) -> UrpListener {
        UrpListener { line }
    }

    /// The line's Datakit address.
    pub fn addr(&self) -> String {
        self.line.addr().to_string()
    }

    /// Blocks for an incoming call; returns the conversation, caller's
    /// address and requested service.
    pub fn accept(&self) -> Option<(Arc<UrpConn>, String, String)> {
        let IncomingCall {
            from,
            service,
            circuit,
        } = self.line.listen()?;
        Some((UrpConn::new(circuit), from, service))
    }

    /// Waits for a call until the timeout elapses.
    pub fn accept_timeout(&self, d: Duration) -> Option<(Arc<UrpConn>, String, String)> {
        let IncomingCall {
            from,
            service,
            circuit,
        } = self.line.listen_timeout(d)?;
        Some((UrpConn::new(circuit), from, service))
    }

    /// Rejects the next incoming call with a reason (Datakit supports
    /// rejection reasons, §5.2).
    pub fn reject_next(&self, d: Duration, reason: &str) -> bool {
        match self.line.listen_timeout(d) {
            Some(call) => {
                call.circuit.reject(reason);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plan9_netsim::fabric::DatakitSwitch;
    use plan9_netsim::profile::Profiles;

    fn pair() -> (Arc<UrpConn>, Arc<UrpConn>) {
        pair_with(Profiles::datakit_fast())
    }

    fn pair_with(profile: plan9_netsim::profile::LinkProfile) -> (Arc<UrpConn>, Arc<UrpConn>) {
        let sw = DatakitSwitch::new(profile);
        let a = sw.attach("nj/astro/a").unwrap();
        let b = sw.attach("nj/astro/b").unwrap();
        let listener = UrpListener::new(b);
        let t = std::thread::spawn(move || listener.accept().unwrap().0);
        let ca = urp_dial(&a, "nj/astro/b!test").unwrap();
        let cb = t.join().unwrap();
        (ca, cb)
    }

    #[test]
    fn message_round_trip() {
        let (a, b) = pair();
        a.send(b"Tversion-ish message").unwrap();
        assert_eq!(b.recv().unwrap(), b"Tversion-ish message");
        b.send(b"reply").unwrap();
        assert_eq!(a.recv().unwrap(), b"reply");
    }

    #[test]
    fn delimiters_preserved() {
        let (a, b) = pair();
        for n in [0usize, 1, 100, 5000] {
            a.send(&vec![9u8; n]).unwrap();
        }
        for n in [0usize, 1, 100, 5000] {
            assert_eq!(b.recv().unwrap().len(), n);
        }
    }

    #[test]
    fn large_message_crosses_many_cells() {
        let (a, b) = pair();
        let msg: Vec<u8> = (0..30_000u32).map(|i| i as u8).collect();
        let expect = msg.clone();
        let t = std::thread::spawn(move || b.recv().unwrap());
        a.send(&msg).unwrap();
        assert_eq!(t.join().unwrap(), expect);
        assert!(a.stats.tx_cells.load(Ordering::Relaxed) > URP_WINDOW as u64);
    }

    #[test]
    fn survives_cell_loss() {
        let (a, b) = pair_with(Profiles::datakit_fast().with_loss(0.1));
        let msgs: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i; 100]).collect();
        let expect = msgs.clone();
        let t = std::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..50 {
                got.push(b.recv().unwrap());
            }
            got
        });
        for m in &msgs {
            a.send(m).unwrap();
        }
        assert_eq!(t.join().unwrap(), expect);
        assert!(
            a.stats.retransmit_cells.load(Ordering::Relaxed) > 0
                || a.stats.enqs.load(Ordering::Relaxed) > 0
        );
    }

    #[test]
    fn close_gives_eof() {
        let (a, b) = pair();
        a.send(b"last words").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        a.close();
        assert_eq!(b.recv().unwrap(), b"last words");
        assert_eq!(b.recv(), None);
        assert!(a.send(b"after close").is_err());
    }

    #[test]
    fn rejection_reason_visible() {
        let sw = DatakitSwitch::new(Profiles::datakit_fast());
        let srv = sw.attach("nj/astro/srv").unwrap();
        let cli = sw.attach("nj/astro/cli").unwrap();
        let listener = UrpListener::new(srv);
        let t = std::thread::spawn(move || {
            listener.reject_next(Duration::from_secs(2), "no such service")
        });
        let circuit = cli.dial("nj/astro/srv!bogus").unwrap();
        assert_eq!(circuit.recv(), None);
        assert_eq!(circuit.reject_reason().unwrap(), "no such service");
        assert!(t.join().unwrap());
    }

    #[test]
    fn status_reports_window() {
        let (a, _b) = pair();
        assert!(a.status_string().contains("window 7"), "{}", a.status_string());
        assert!(a.local_addr().contains("nj/astro/a"));
        assert!(a.remote_addr().contains("nj/astro/b"));
    }
}
