//! Datakit support: the URP protocol over virtual circuits.
//!
//! The paper's hierarchy of networks (§1) uses Datakit [Fra80] for the
//! AT&T backbone and medium-speed fan-out, with the **URP** protocol
//! device (`/net/dk`) providing "Datakit conversations" as streams
//! (§2.3, §2.4). The simulated switch fabric lives in `plan9-netsim`;
//! this crate implements URP — the Universal Receiver Protocol — on top
//! of raw circuits: windowed, sequenced, error-recovering transmission
//! with message delimiters, which is what 9P needs from a transport.

pub mod urp;

pub use urp::{urp_dial, UrpConn, UrpListener, URP_WINDOW};

/// Result alias matching the rest of the system.
pub type Result<T> = std::result::Result<T, plan9_ninep::NineError>;
