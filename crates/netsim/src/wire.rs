//! The pacing engine: a unidirectional frame wire.
//!
//! A wire carries whole frames from one sender to one receiver. The
//! sender is blocked for the frame's transmission time (serializing the
//! line), the frame is delivered after the propagation delay, and the
//! configured impairments (loss, duplication, corruption, reordering)
//! are applied in flight.

use crate::profile::LinkProfile;
use plan9_netlog::Counter;
use plan9_support::chan::{unbounded, Receiver, RecvTimeoutError, Sender};
use plan9_support::sync::Mutex;
use plan9_support::rng::SmallRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use plan9_support::time;
use std::time::{Duration, Instant};

/// A frame in flight with its delivery time.
struct InFlight {
    deliver_at: Instant,
    frame: Vec<u8>,
}

/// Ground-truth frame accounting for one medium, maintained inside
/// `impair` itself so the identity
/// `delivered == sent − dropped + duplicated` holds by construction.
pub struct WireStats {
    /// Frames handed to the medium.
    pub sent: Counter,
    /// Frame copies actually put in flight.
    pub delivered: Counter,
    /// Frames dropped by the loss roll.
    pub dropped: Counter,
    /// Extra copies created by the duplication roll.
    pub duplicated: Counter,
    /// Frames with a byte flipped by the corruption roll.
    pub corrupted: Counter,
    /// Frames delayed past their successors by the reorder roll.
    pub reordered: Counter,
}

impl WireStats {
    fn new() -> WireStats {
        WireStats {
            sent: Counter::new("sent"),
            delivered: Counter::new("delivered"),
            dropped: Counter::new("dropped"),
            duplicated: Counter::new("duplicated"),
            corrupted: Counter::new("corrupted"),
            reordered: Counter::new("reordered"),
        }
    }

    /// Renders the counters as the paper's `key: value` ASCII lines.
    pub fn render(&self) -> String {
        format!(
            "sent: {}\ndelivered: {}\ndropped: {}\nduplicated: {}\ncorrupted: {}\nreordered: {}\n",
            self.sent.get(),
            self.delivered.get(),
            self.dropped.get(),
            self.duplicated.get(),
            self.corrupted.get(),
            self.reordered.get()
        )
    }
}

/// The shared line state (the "medium"): who is transmitting and until
/// when. Several senders may share one medium (an Ethernet segment); the
/// lock serializes them exactly as a bus does.
pub struct Medium {
    profile: LinkProfile,
    busy_until: Mutex<Instant>,
    rng: Mutex<SmallRng>,
    stats: WireStats,
    /// Administrative link state: a downed medium drops every frame
    /// (counted as sent + dropped) without consuming impairment draws,
    /// so flapping a link never reshuffles a seeded run's later
    /// decisions and the conservation identity keeps holding.
    up: AtomicBool,
}

impl Medium {
    /// Creates a medium with the given profile.
    pub fn new(profile: LinkProfile) -> Arc<Medium> {
        let seed = profile.seed;
        Arc::new(Medium {
            profile,
            busy_until: Mutex::named(time::now(), "netsim.wire.busy"),
            rng: Mutex::named(SmallRng::seed_from_u64(seed), "netsim.wire.rng"),
            stats: WireStats::new(),
            up: AtomicBool::new(true),
        })
    }

    /// Raises or cuts the link (a trunk flap, a partition). While down,
    /// frames are still paced onto the line but every one is dropped.
    pub fn set_up(&self, up: bool) {
        self.up.store(up, Ordering::Relaxed);
    }

    /// Whether the link is administratively up.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }

    /// The profile this medium was built with.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// The medium's frame counters.
    pub fn stats(&self) -> &WireStats {
        &self.stats
    }

    /// Acquires the line for `len` payload bytes and returns the instant
    /// transmission completes. Blocks the caller for the duration — the
    /// medium is busy and so is the transmitting "hardware".
    pub fn transmit(&self, len: usize) -> Instant {
        let tx = self.profile.tx_time(len);
        let done = {
            let mut busy = self.busy_until.lock();
            let start = (*busy).max(time::now());
            *busy = start + tx;
            *busy
        };
        // Pace the sender. For sub-millisecond waits a sleep is accurate
        // enough; we re-check because sleep may undershoot.
        let mut now = time::now();
        while now < done {
            time::sleep(done - now);
            now = time::now();
        }
        done
    }

    /// Rolls the impairment dice for one frame, possibly mutating it.
    /// Returns how many copies to deliver (0 = dropped) and an extra
    /// delay for reordering.
    pub(crate) fn impair(&self, frame: &mut [u8]) -> (usize, Duration) {
        let p = &self.profile;
        self.stats.sent.inc();
        if !self.is_up() {
            // A downed link eats the frame before the impairment dice:
            // no RNG draw is consumed, so the surviving traffic of a
            // seeded run is unchanged by when the flap happened.
            self.stats.dropped.inc();
            return (0, Duration::ZERO);
        }
        if p.loss == 0.0 && p.dup == 0.0 && p.corrupt == 0.0 && p.reorder == 0.0 {
            self.stats.delivered.inc();
            return (1, Duration::ZERO);
        }
        // Roll every enabled impairment before applying any outcome: a
        // frame the loss roll drops must not consume the corrupt, dup
        // or reorder draws, or toggling one profile knob would
        // reshuffle every later decision of a seeded run.
        let (lost, corrupt_idx, dup, reorder) = {
            let mut rng = self.rng.lock();
            let lost = p.loss > 0.0 && rng.gen_bool(p.loss.min(1.0));
            let corrupt_idx = if p.corrupt > 0.0
                && rng.gen_bool(p.corrupt.min(1.0))
                && !frame.is_empty()
            {
                Some(rng.gen_range(0..frame.len()))
            } else {
                None
            };
            let dup = p.dup > 0.0 && rng.gen_bool(p.dup.min(1.0));
            let reorder = p.reorder > 0.0 && rng.gen_bool(p.reorder.min(1.0));
            (lost, corrupt_idx, dup, reorder)
        };
        if lost {
            self.stats.dropped.inc();
            return (0, Duration::ZERO);
        }
        if let Some(idx) = corrupt_idx {
            frame[idx] ^= 0xff;
            self.stats.corrupted.inc();
        }
        let copies = if dup {
            self.stats.duplicated.inc();
            2
        } else {
            1
        };
        self.stats.delivered.add(copies as u64);
        let extra = if reorder {
            self.stats.reordered.inc();
            // Delay long enough to land behind the next frame or two.
            p.tx_time(p.mtu) * 3 + p.propagation
        } else {
            Duration::ZERO
        };
        (copies, extra)
    }
}

/// The sending half of a wire.
pub struct WireTx {
    medium: Arc<Medium>,
    tx: Sender<InFlight>,
}

impl WireTx {
    /// Sends one frame, blocking for the transmission time.
    ///
    /// Frames larger than the medium's MTU are refused — fragmentation is
    /// the business of the protocol layer above.
    pub fn send(&self, frame: &[u8]) -> crate::Result<()> {
        if frame.len() > self.medium.profile.mtu {
            return Err(format!(
                "frame of {} bytes exceeds {} mtu {}",
                frame.len(),
                self.medium.profile.name,
                self.medium.profile.mtu
            ));
        }
        let cur = plan9_netlog::trace::current();
        let t0 = cur.as_ref().map(|_| time::now());
        let done = self.medium.transmit(frame.len());
        let mut f = frame.to_vec();
        let (copies, extra) = self.medium.impair(&mut f);
        let deliver_at = done + self.medium.profile.propagation + extra;
        for _ in 0..copies {
            self.tx
                .send(InFlight {
                    deliver_at,
                    frame: f.clone(),
                })
                .map_err(|_| "wire: peer gone".to_string())?;
        }
        if let (Some(h), Some(t0)) = (cur, t0) {
            // Line acquisition plus serialization: where a paced or
            // busy wire makes a traced request wait.
            h.span(
                plan9_netlog::Facility::Ether,
                &format!("wire tx {}B", frame.len()),
                t0,
                time::now(),
            );
        }
        Ok(())
    }

    /// The medium this wire transmits on.
    pub fn medium(&self) -> &Arc<Medium> {
        &self.medium
    }
}

/// What a receive attempt produced.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A frame arrived.
    Frame(Vec<u8>),
    /// The sender is gone; no more frames will ever arrive.
    Hangup,
    /// The timeout elapsed first.
    TimedOut,
}

/// The receiving half of a wire.
pub struct WireRx {
    rx: Receiver<InFlight>,
    /// A frame that arrived while waiting but is not yet due (reordering
    /// support keeps at most one).
    held: Option<InFlight>,
}

impl WireRx {
    /// Blocks for the next frame; `None` means the sender hung up.
    pub fn recv(&mut self) -> Option<Vec<u8>> {
        match self.recv_deadline(None) {
            RecvOutcome::Frame(f) => Some(f),
            _ => None,
        }
    }

    /// Waits for a frame until `timeout` elapses.
    pub fn recv_timeout(&mut self, timeout: Duration) -> RecvOutcome {
        self.recv_deadline(Some(time::now() + timeout))
    }

    fn recv_deadline(&mut self, deadline: Option<Instant>) -> RecvOutcome {
        let inflight = match self.held.take() {
            Some(f) => f,
            None => match deadline {
                None => match self.rx.recv() {
                    Ok(f) => f,
                    Err(_) => return RecvOutcome::Hangup,
                },
                Some(d) => {
                    let now = time::now();
                    if d <= now {
                        match self.rx.try_recv() {
                            Ok(f) => f,
                            Err(_) => return RecvOutcome::TimedOut,
                        }
                    } else {
                        match self.rx.recv_timeout(d - now) {
                            Ok(f) => f,
                            Err(RecvTimeoutError::Timeout) => return RecvOutcome::TimedOut,
                            Err(RecvTimeoutError::Disconnected) => return RecvOutcome::Hangup,
                        }
                    }
                }
            },
        };
        // Honor the in-flight propagation delay.
        let now = time::now();
        if inflight.deliver_at > now {
            if let Some(d) = deadline {
                if inflight.deliver_at > d {
                    // Not due before the caller's deadline: hold it.
                    let wait = d - now;
                    time::sleep(wait);
                    self.held = Some(inflight);
                    return RecvOutcome::TimedOut;
                }
            }
            time::sleep(inflight.deliver_at - now);
        }
        RecvOutcome::Frame(inflight.frame)
    }

    /// Non-blocking poll.
    pub fn try_recv(&mut self) -> Option<Vec<u8>> {
        // blocking-ok: zero timeout — the wait deadline is already
        // past, so this returns without sleeping
        match self.recv_timeout(Duration::ZERO) {
            RecvOutcome::Frame(f) => Some(f),
            _ => None,
        }
    }
}

/// Creates a unidirectional wire with its own medium.
pub fn wire_pair(profile: LinkProfile) -> (WireTx, WireRx) {
    let medium = Medium::new(profile);
    wire_on_medium(medium)
}

/// Creates a unidirectional wire transmitting on an existing medium
/// (used by shared-bus media).
pub fn wire_on_medium(medium: Arc<Medium>) -> (WireTx, WireRx) {
    let (tx, rx) = unbounded();
    (WireTx { medium, tx }, WireRx { rx, held: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{LinkProfile, Profiles};

    #[test]
    fn frames_arrive_in_order() {
        let (tx, mut rx) = wire_pair(Profiles::ether_fast());
        tx.send(b"one").unwrap();
        tx.send(b"two").unwrap();
        assert_eq!(rx.recv().unwrap(), b"one");
        assert_eq!(rx.recv().unwrap(), b"two");
    }

    #[test]
    fn hangup_when_sender_dropped() {
        let (tx, mut rx) = wire_pair(Profiles::ether_fast());
        tx.send(b"last").unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), b"last");
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn mtu_enforced() {
        let (tx, _rx) = wire_pair(Profiles::ether_fast());
        assert!(tx.send(&vec![0u8; 2000]).is_err());
    }

    #[test]
    fn pacing_throttles_throughput() {
        // 1 Mbit/s: 10 frames of 1250 bytes = 100 ms on the line.
        let profile = LinkProfile {
            bandwidth_bps: 1_000_000,
            ..LinkProfile::fast("slow", 1500)
        };
        let (tx, mut rx) = wire_pair(profile);
        let start = Instant::now();
        let h = std::thread::spawn(move || {
            for _ in 0..10 {
                tx.send(&[0u8; 1250]).unwrap();
            }
        });
        for _ in 0..10 {
            rx.recv().unwrap();
        }
        h.join().unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(95),
            "paced send finished too fast: {elapsed:?}"
        );
    }

    #[test]
    fn propagation_delays_delivery() {
        let profile = LinkProfile {
            propagation: Duration::from_millis(20),
            ..LinkProfile::fast("lagged", 1500)
        };
        let (tx, mut rx) = wire_pair(profile);
        let start = Instant::now();
        tx.send(b"x").unwrap();
        rx.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn loss_drops_frames() {
        let (tx, mut rx) = wire_pair(Profiles::ether_fast().with_loss(1.0));
        tx.send(b"gone").unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), RecvOutcome::TimedOut);
    }

    #[test]
    fn dup_delivers_twice() {
        let (tx, mut rx) = wire_pair(Profiles::ether_fast().with_dup(1.0));
        tx.send(b"twin").unwrap();
        assert_eq!(rx.recv().unwrap(), b"twin");
        assert_eq!(rx.recv().unwrap(), b"twin");
    }

    #[test]
    fn corrupt_flips_bytes() {
        let (tx, mut rx) = wire_pair(Profiles::ether_fast().with_corrupt(1.0));
        tx.send(b"fragile").unwrap();
        let got = rx.recv().unwrap();
        assert_eq!(got.len(), 7);
        assert_ne!(got, b"fragile");
    }

    #[test]
    fn stats_identity_holds_per_wire() {
        let profile = Profiles::ether_fast().with_loss(0.3).with_dup(0.2);
        let (tx, mut rx) = wire_pair(profile);
        for _ in 0..200 {
            tx.send(b"frame").unwrap();
        }
        let s = tx.medium().stats();
        assert_eq!(s.sent.get(), 200);
        assert_eq!(
            s.delivered.get(),
            s.sent.get() - s.dropped.get() + s.duplicated.get(),
            "delivered == sent - dropped + duplicated"
        );
        // Every delivered copy is sitting in the channel.
        let mut got = 0u64;
        while rx.try_recv().is_some() {
            got += 1;
        }
        assert_eq!(got, s.delivered.get());
    }

    #[test]
    fn loss_roll_does_not_consume_other_draws() {
        // Two runs from the same seed differing only in the loss
        // probability. Each enabled impairment rolls exactly once per
        // frame, so frame i's corruption decision is the same in both
        // runs; check it on every frame that survives both.
        let run = |loss: f64| -> Vec<Option<bool>> {
            let medium = Medium::new(Profiles::ether_fast().with_loss(loss).with_corrupt(0.5));
            (0..200)
                .map(|_| {
                    let mut f = b"abcdefgh".to_vec();
                    let (copies, _) = medium.impair(&mut f);
                    if copies == 0 {
                        None
                    } else {
                        Some(f != b"abcdefgh".to_vec())
                    }
                })
                .collect()
        };
        let light = run(0.1);
        let heavy = run(0.6);
        let mut compared = 0;
        for i in 0..200 {
            if let (Some(a), Some(b)) = (light[i], heavy[i]) {
                assert_eq!(a, b, "frame {i}: corrupt decision changed with the loss knob");
                compared += 1;
            }
        }
        assert!(compared > 20, "expected surviving overlap, got {compared}");
    }

    #[test]
    fn down_link_drops_without_consuming_draws() {
        // A frame offered while the link is down must not consume any
        // impairment draws: the flapped run's surviving frames carry
        // exactly the decisions of a run that never offered the dropped
        // frames at all, and conservation holds through the flap.
        let run = |flap: bool| -> (Vec<Option<bool>>, u64, u64, u64) {
            let medium = Medium::new(Profiles::ether_fast().with_corrupt(0.5));
            let out = (0..100)
                .filter(|i| flap || !(40..60).contains(i))
                .map(|i| {
                    if flap {
                        medium.set_up(!(40..60).contains(&i));
                    }
                    let mut f = b"abcdefgh".to_vec();
                    let (copies, _) = medium.impair(&mut f);
                    if copies == 0 {
                        None
                    } else {
                        Some(f != b"abcdefgh".to_vec())
                    }
                })
                .collect();
            let s = medium.stats();
            (out, s.sent.get(), s.delivered.get(), s.dropped.get())
        };
        let (skipped, ..) = run(false);
        let (flapped, sent, delivered, dropped) = run(true);
        assert_eq!(sent, 100);
        assert_eq!(dropped, 20, "the 20 flapped frames are dropped");
        assert_eq!(delivered, sent - dropped, "conservation through the flap");
        assert_eq!(skipped.len(), 80);
        for (i, f) in flapped.iter().enumerate().take(60).skip(40) {
            assert_eq!(*f, None, "frame {i} crossed a downed link");
        }
        for (si, fi) in (0..40).zip(0..40).chain((40..80).zip(60..100)) {
            assert_eq!(
                skipped[si], flapped[fi],
                "frame {fi}: the flap consumed impairment draws"
            );
        }
    }

    #[test]
    fn timeout_returns_timedout() {
        let (_tx, mut rx) = wire_pair(Profiles::ether_fast());
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(25)),
            RecvOutcome::TimedOut
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
    }
}
