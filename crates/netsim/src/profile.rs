//! Link calibration profiles.
//!
//! A [`LinkProfile`] captures everything the pacing engine needs to make
//! a simulated medium behave like a particular piece of 1993 hardware.
//! The numbers in [`Profiles::calibrated`] are derived from the paper:
//!
//! * Ethernet: 10 Mbit/s raw; the paper's IL/ether path moved 1.02 MB/s
//!   of the 1.25 MB/s raw medium, with a 1.42 ms one-byte round trip —
//!   most of that round trip is protocol processing on 25 MHz MIPS, which
//!   we charge as a per-frame overhead.
//! * Datakit: URP moved 0.22 MB/s with a 1.75 ms round trip; the line is
//!   modeled near T1-class speed with store-and-forward switch latency.
//! * Cyclone: 125 Mbit/s fiber, but end-to-end throughput was 3.2 MB/s —
//!   limited by VME bus copies, which we model as a reduced effective
//!   bandwidth plus a small per-frame staging cost.
//! * Pipes: memory-bound, unpaced (the paper's 8.15 MB/s is simply what
//!   a 25 MHz MIPS could copy; modern hardware is faster, and the paper's
//!   *ordering* — pipes fastest — still holds).

use std::time::Duration;

/// The workspace-wide default impairment seed (stable across builds so
/// recorded bench numbers stay comparable).
pub const DEFAULT_SEED: u64 = 0x9fc0de;

/// Parameters of one direction of a simulated link.
#[derive(Debug, Clone)]
pub struct LinkProfile {
    /// Human-readable name for stats files and reports.
    pub name: &'static str,
    /// Line rate in bits per second; `0` means unpaced (memory speed).
    pub bandwidth_bps: u64,
    /// One-way propagation (and switching) delay.
    pub propagation: Duration,
    /// Fixed cost charged per frame, modeling era-appropriate protocol
    /// and interrupt processing.
    pub per_frame: Duration,
    /// Extra bytes charged to each frame on the wire (preamble, headers
    /// below the simulated layer).
    pub frame_overhead: usize,
    /// Largest frame the medium will carry.
    pub mtu: usize,
    /// Probability a frame is silently dropped.
    pub loss: f64,
    /// Probability a frame is delivered twice.
    pub dup: f64,
    /// Probability a frame has a byte corrupted in flight.
    pub corrupt: f64,
    /// Probability a frame is delayed past its successor (reordering).
    pub reorder: f64,
    /// Seed for the medium's impairment RNG: two runs of the same
    /// scenario with the same seed draw identical loss/dup/corrupt/
    /// reorder decisions.
    pub seed: u64,
}

impl LinkProfile {
    /// An unpaced, perfectly reliable link — the unit-test medium.
    pub fn fast(name: &'static str, mtu: usize) -> LinkProfile {
        LinkProfile {
            name,
            bandwidth_bps: 0,
            propagation: Duration::ZERO,
            per_frame: Duration::ZERO,
            frame_overhead: 0,
            mtu,
            loss: 0.0,
            dup: 0.0,
            corrupt: 0.0,
            reorder: 0.0,
            seed: DEFAULT_SEED,
        }
    }

    /// Returns a copy with the given frame-loss probability.
    pub fn with_loss(mut self, loss: f64) -> LinkProfile {
        self.loss = loss;
        self
    }

    /// Returns a copy with the given duplication probability.
    pub fn with_dup(mut self, dup: f64) -> LinkProfile {
        self.dup = dup;
        self
    }

    /// Returns a copy with the given corruption probability.
    pub fn with_corrupt(mut self, corrupt: f64) -> LinkProfile {
        self.corrupt = corrupt;
        self
    }

    /// Returns a copy with the given reorder probability.
    pub fn with_reorder(mut self, reorder: f64) -> LinkProfile {
        self.reorder = reorder;
        self
    }

    /// Returns a copy seeding the impairment RNG with `seed`.
    pub fn with_seed(mut self, seed: u64) -> LinkProfile {
        self.seed = seed;
        self
    }

    /// Scales all time costs by `1/factor` (a factor of 10 makes the
    /// simulated hardware ten times faster), for quick benchmark runs.
    pub fn speedup(mut self, factor: f64) -> LinkProfile {
        if factor <= 0.0 {
            return self;
        }
        if self.bandwidth_bps != 0 {
            self.bandwidth_bps = ((self.bandwidth_bps as f64) * factor) as u64;
        }
        self.propagation = self.propagation.div_f64(factor);
        self.per_frame = self.per_frame.div_f64(factor);
        self
    }

    /// The time the line is busy transmitting `len` payload bytes.
    pub fn tx_time(&self, len: usize) -> Duration {
        let mut t = self.per_frame;
        let bits = ((len + self.frame_overhead) * 8) as u64;
        // bandwidth 0 means "infinitely fast": no serialization term.
        if let Some(ns) = bits.saturating_mul(1_000_000_000).checked_div(self.bandwidth_bps) {
            t += Duration::from_nanos(ns);
        }
        t
    }
}

/// The named profile sets used by benchmarks and machine assembly.
pub struct Profiles;

impl Profiles {
    /// 10 Mbit/s shared Ethernet with 1993-class processing costs.
    pub fn ether_calibrated() -> LinkProfile {
        LinkProfile {
            name: "ether10",
            bandwidth_bps: 10_000_000,
            propagation: Duration::from_micros(120),
            per_frame: Duration::from_micros(320),
            frame_overhead: 38, // preamble + FCS + interframe gap
            mtu: 1514,
            loss: 0.0,
            dup: 0.0,
            corrupt: 0.0,
            reorder: 0.0,
            seed: DEFAULT_SEED,
        }
    }

    /// An unpaced Ethernet for tests.
    pub fn ether_fast() -> LinkProfile {
        LinkProfile::fast("ether", 1514)
    }

    /// Datakit line through the switch: T1-class with store-and-forward
    /// latency and per-cell overhead.
    pub fn datakit_calibrated() -> LinkProfile {
        LinkProfile {
            name: "datakit",
            bandwidth_bps: 2_200_000,
            propagation: Duration::from_micros(200),
            per_frame: Duration::from_micros(480),
            frame_overhead: 8,
            mtu: 2048,
            loss: 0.0,
            dup: 0.0,
            corrupt: 0.0,
            reorder: 0.0,
            seed: DEFAULT_SEED,
        }
    }

    /// An unpaced Datakit for tests.
    pub fn datakit_fast() -> LinkProfile {
        LinkProfile::fast("datakit", 2048)
    }

    /// Cyclone fiber link: 125 Mbit/s on the fiber but end-to-end limited
    /// by VME copies to roughly 30 Mbit/s effective.
    pub fn cyclone_calibrated() -> LinkProfile {
        LinkProfile {
            name: "cyclone",
            bandwidth_bps: 30_000_000,
            propagation: Duration::from_micros(10),
            per_frame: Duration::from_micros(150),
            frame_overhead: 8,
            mtu: 16 * 1024,
            loss: 0.0,
            dup: 0.0,
            corrupt: 0.0,
            reorder: 0.0,
            seed: DEFAULT_SEED,
        }
    }

    /// An unpaced Cyclone for tests.
    pub fn cyclone_fast() -> LinkProfile {
        LinkProfile::fast("cyclone", 16 * 1024)
    }

    /// A serial line at the given baud rate (10 bits per byte with start
    /// and stop bits).
    pub fn uart(baud: u32) -> LinkProfile {
        LinkProfile {
            name: "eia",
            bandwidth_bps: baud as u64,
            propagation: Duration::from_micros(1),
            per_frame: Duration::ZERO,
            frame_overhead: 0,
            mtu: 1,
            loss: 0.0,
            dup: 0.0,
            corrupt: 0.0,
            reorder: 0.0,
            seed: DEFAULT_SEED,
        }
    }

    /// In-memory pipes: unpaced.
    pub fn pipe() -> LinkProfile {
        LinkProfile::fast("pipe", 32 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_zero_when_unpaced() {
        let p = LinkProfile::fast("x", 1500);
        assert_eq!(p.tx_time(1500), Duration::ZERO);
    }

    #[test]
    fn tx_time_scales_with_length() {
        let p = Profiles::ether_calibrated();
        let t1 = p.tx_time(100);
        let t2 = p.tx_time(1400);
        assert!(t2 > t1);
        // 1400+38 bytes at 10 Mbit/s is ~1.15 ms plus per-frame cost.
        let expect = p.per_frame + Duration::from_micros((1438 * 8) / 10);
        let diff = t2.abs_diff(expect);
        assert!(diff < Duration::from_micros(5), "t2={t2:?} expect={expect:?}");
    }

    #[test]
    fn speedup_divides_costs() {
        let base = Profiles::ether_calibrated();
        let p = base.clone().speedup(10.0);
        assert_eq!(p.bandwidth_bps, base.bandwidth_bps * 10);
        assert_eq!(p.per_frame, base.per_frame / 10);
    }

    #[test]
    fn impairment_builders() {
        let p = Profiles::ether_fast().with_loss(0.1).with_dup(0.2);
        assert_eq!(p.loss, 0.1);
        assert_eq!(p.dup, 0.2);
    }
}
