//! A Datakit-style virtual-circuit switch fabric.
//!
//! Datakit [Fra80] is a circuit network: a host dials an address string
//! like `nj/astro/helix` and the switch establishes a full-duplex
//! circuit. The dial string may carry a service (`nj/astro/helix!9fs`),
//! delivered to the callee during call setup; the callee accepts or
//! rejects with a reason — the paper notes "some networks such as Datakit
//! accept a reason for a rejection" (§5.2).
//!
//! Circuits deliver frames in order; reliability and flow control are the
//! business of URP, the protocol the `plan9-datakit` crate pushes on top.
//!
//! Constructors here (and in [`ether`](crate::ether)/[`wire`](crate::wire))
//! bind the fabric to whatever clock is installed at build time: link
//! pacing, propagation delay, and impairment timing all read
//! `plan9_support::time`, so a fabric built under
//! `plan9_support::vtime::enter` runs entirely on the discrete-event
//! virtual clock, and every impairment draw comes from the profile's
//! [`seed`](crate::profile::LinkProfile::seed).

use crate::profile::LinkProfile;
use crate::wire::{wire_pair, RecvOutcome, WireRx, WireTx};
use plan9_support::chan::{unbounded, Receiver, Sender};
use plan9_support::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Tag bytes prefixed to circuit frames, so hangup reasons travel
/// in-band the way Datakit supervisory messages did.
const TAG_DATA: u8 = 0;
const TAG_REJECT: u8 = 1;

struct SwitchInner {
    lines: Mutex<HashMap<String, Sender<IncomingCall>>>,
    profile: LinkProfile,
}

/// The switch: a name table of attached lines.
pub struct DatakitSwitch {
    inner: Arc<SwitchInner>,
}

impl DatakitSwitch {
    /// Creates a switch whose circuits use the given link profile.
    pub fn new(profile: LinkProfile) -> Arc<DatakitSwitch> {
        Arc::new(DatakitSwitch {
            inner: Arc::new(SwitchInner {
                lines: Mutex::named(HashMap::new(), "netsim.fabric.lines"),
                profile,
            }),
        })
    }

    /// Attaches a host line under a Datakit address (`nj/astro/helix`).
    pub fn attach(&self, addr: &str) -> crate::Result<DatakitLine> {
        let (tx, rx) = unbounded();
        let mut lines = self.inner.lines.lock();
        if lines.contains_key(addr) {
            return Err(format!("datakit address in use: {addr}"));
        }
        lines.insert(addr.to_string(), tx);
        Ok(DatakitLine {
            addr: addr.to_string(),
            inner: Arc::clone(&self.inner),
            incoming: rx,
        })
    }

    /// The circuit MTU for this switch.
    pub fn mtu(&self) -> usize {
        self.inner.profile.mtu.saturating_sub(1)
    }
}

/// A host's line into the switch.
pub struct DatakitLine {
    addr: String,
    inner: Arc<SwitchInner>,
    incoming: Receiver<IncomingCall>,
}

/// A call presented to a listening line.
pub struct IncomingCall {
    /// The caller's Datakit address.
    pub from: String,
    /// The service named in the dial string (after `!`), if any.
    pub service: String,
    /// The circuit; use it to converse, or [`Circuit::reject`] it.
    pub circuit: Circuit,
}

impl DatakitLine {
    /// This line's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Dials `dest` (an address, optionally `addr!service`) and returns
    /// the local end of the circuit.
    pub fn dial(&self, dest: &str) -> crate::Result<Circuit> {
        let (addr, service) = match dest.split_once('!') {
            Some((a, s)) => (a, s),
            None => (dest, ""),
        };
        let peer_tx = {
            let lines = self.inner.lines.lock();
            lines
                .get(addr)
                .cloned()
                .ok_or_else(|| format!("no route to {addr}"))?
        };
        // Two wires, one per direction, each paced independently
        // (Datakit lines are full duplex).
        let (a2b_tx, a2b_rx) = wire_pair(self.inner.profile.clone());
        let (b2a_tx, b2a_rx) = wire_pair(self.inner.profile.clone());
        let near = Circuit {
            local: self.addr.clone(),
            remote: addr.to_string(),
            tx: a2b_tx,
            rx: Mutex::named(b2a_rx, "netsim.fabric.rx"),
            reject_reason: Mutex::named(None, "netsim.fabric.reject"),
        };
        let far = Circuit {
            local: addr.to_string(),
            remote: self.addr.clone(),
            tx: b2a_tx,
            rx: Mutex::named(a2b_rx, "netsim.fabric.rx"),
            reject_reason: Mutex::named(None, "netsim.fabric.reject"),
        };
        peer_tx
            .send(IncomingCall {
                from: self.addr.clone(),
                service: service.to_string(),
                circuit: far,
            })
            .map_err(|_| format!("line down: {addr}"))?;
        Ok(near)
    }

    /// Blocks for the next incoming call.
    pub fn listen(&self) -> Option<IncomingCall> {
        self.incoming.recv().ok()
    }

    /// Waits for an incoming call with a timeout.
    pub fn listen_timeout(&self, d: Duration) -> Option<IncomingCall> {
        self.incoming.recv_timeout(d).ok()
    }
}

/// One end of an established circuit.
pub struct Circuit {
    local: String,
    remote: String,
    tx: WireTx,
    rx: Mutex<WireRx>,
    reject_reason: Mutex<Option<String>>,
}

impl std::fmt::Debug for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Circuit({} -> {})", self.local, self.remote)
    }
}

impl Circuit {
    /// The local address.
    pub fn local_addr(&self) -> &str {
        &self.local
    }

    /// The peer's address.
    pub fn remote_addr(&self) -> &str {
        &self.remote
    }

    /// Sends one frame in order.
    pub fn send(&self, frame: &[u8]) -> crate::Result<()> {
        let mut buf = Vec::with_capacity(frame.len() + 1);
        buf.push(TAG_DATA);
        buf.extend_from_slice(frame);
        self.tx.send(&buf)
    }

    /// Blocks for the next frame; `None` means the peer hung up (check
    /// [`Circuit::reject_reason`] for a Datakit rejection).
    pub fn recv(&self) -> Option<Vec<u8>> {
        let frame = self.rx.lock().recv()?;
        self.classify(frame)
    }

    /// Waits for a frame until the timeout elapses.
    pub fn recv_timeout(&self, d: Duration) -> RecvOutcome {
        let out = self.rx.lock().recv_timeout(d);
        match out {
            RecvOutcome::Frame(frame) => match self.classify(frame) {
                Some(f) => RecvOutcome::Frame(f),
                None => RecvOutcome::Hangup,
            },
            other => other,
        }
    }

    fn classify(&self, frame: Vec<u8>) -> Option<Vec<u8>> {
        match frame.first() {
            Some(&TAG_DATA) => Some(frame[1..].to_vec()),
            Some(&TAG_REJECT) => {
                let reason = String::from_utf8_lossy(&frame[1..]).to_string();
                *self.reject_reason.lock() = Some(reason);
                None
            }
            _ => None,
        }
    }

    /// Rejects the call with a reason and hangs up.
    pub fn reject(self, reason: &str) {
        let mut buf = vec![TAG_REJECT];
        buf.extend_from_slice(reason.as_bytes());
        let _ = self.tx.send(&buf);
        // Dropping self hangs up the circuit.
    }

    /// Why the peer rejected the call, if it did.
    pub fn reject_reason(&self) -> Option<String> {
        self.reject_reason.lock().clone()
    }

    /// The largest frame the circuit carries.
    pub fn mtu(&self) -> usize {
        self.tx.medium().profile().mtu.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profiles;

    #[test]
    fn dial_and_converse() {
        let sw = DatakitSwitch::new(Profiles::datakit_fast());
        let helix = sw.attach("nj/astro/helix").unwrap();
        let gnot = sw.attach("nj/astro/philw-gnot").unwrap();
        let listener = std::thread::spawn(move || {
            let call = helix.listen().unwrap();
            assert_eq!(call.from, "nj/astro/philw-gnot");
            assert_eq!(call.service, "9fs");
            let msg = call.circuit.recv().unwrap();
            call.circuit.send(&msg).unwrap(); // echo
            call.circuit.recv() // wait for hangup
        });
        let c = gnot.dial("nj/astro/helix!9fs").unwrap();
        c.send(b"Tattach").unwrap();
        assert_eq!(c.recv().unwrap(), b"Tattach");
        drop(c);
        assert_eq!(listener.join().unwrap(), None);
    }

    #[test]
    fn dial_unknown_address_fails() {
        let sw = DatakitSwitch::new(Profiles::datakit_fast());
        let line = sw.attach("nj/astro/a").unwrap();
        let err = line.dial("nj/astro/nowhere").unwrap_err();
        assert!(err.contains("no route"), "{err}");
    }

    #[test]
    fn duplicate_address_refused() {
        let sw = DatakitSwitch::new(Profiles::datakit_fast());
        let _a = sw.attach("nj/astro/x").unwrap();
        assert!(sw.attach("nj/astro/x").is_err());
    }

    #[test]
    fn rejection_carries_reason() {
        let sw = DatakitSwitch::new(Profiles::datakit_fast());
        let srv = sw.attach("nj/astro/srv").unwrap();
        let cli = sw.attach("nj/astro/cli").unwrap();
        std::thread::spawn(move || {
            let call = srv.listen().unwrap();
            call.circuit.reject("service not available");
        });
        let c = cli.dial("nj/astro/srv!nope").unwrap();
        assert_eq!(c.recv(), None);
        assert_eq!(c.reject_reason().unwrap(), "service not available");
    }

    #[test]
    fn frames_stay_ordered() {
        let sw = DatakitSwitch::new(Profiles::datakit_fast());
        let a = sw.attach("a").unwrap();
        let b = sw.attach("b").unwrap();
        let t = std::thread::spawn(move || {
            let call = b.listen().unwrap();
            let mut got = Vec::new();
            for _ in 0..50 {
                got.push(call.circuit.recv().unwrap()[0]);
            }
            got
        });
        let c = a.dial("b").unwrap();
        for i in 0..50u8 {
            c.send(&[i]).unwrap();
        }
        let got = t.join().unwrap();
        assert_eq!(got, (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn hangup_detected_by_timeout_recv() {
        let sw = DatakitSwitch::new(Profiles::datakit_fast());
        let a = sw.attach("a").unwrap();
        let b = sw.attach("b").unwrap();
        let c = a.dial("b").unwrap();
        let call = b.listen().unwrap();
        drop(c);
        assert_eq!(
            call.circuit.recv_timeout(Duration::from_millis(50)),
            RecvOutcome::Hangup
        );
    }
}
