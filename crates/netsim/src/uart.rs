//! Simulated UART serial lines (the `eia` devices of §2.2).
//!
//! A UART moves bytes at its configured baud rate with ten bits on the
//! wire per byte (start + 8 data + stop). The baud rate can be changed
//! at any time — writing `b1200` to `/dev/eia1ctl` in the device layer
//! calls [`UartEnd::set_baud`].

use plan9_support::chan::{unbounded, Receiver, Sender};
use plan9_support::time;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;
#[cfg(test)]
use std::time::Instant;

/// One end of a serial line.
pub struct UartEnd {
    baud: Arc<AtomicU32>,
    tx: Sender<u8>,
    rx: Receiver<u8>,
}

impl UartEnd {
    /// Writes bytes, paced at the current baud rate.
    pub fn send(&self, bytes: &[u8]) -> crate::Result<()> {
        for &b in bytes {
            let baud = self.baud.load(Ordering::Relaxed).max(1);
            // Ten bit times per byte: start, eight data, stop.
            let byte_time = Duration::from_nanos(10_000_000_000u64 / baud as u64);
            time::sleep(byte_time);
            self.tx.send(b).map_err(|_| "uart: line down".to_string())?;
        }
        Ok(())
    }

    /// Blocks for at least one byte, then drains whatever is pending (a
    /// FIFO read). `None` means the line dropped.
    pub fn recv(&self) -> Option<Vec<u8>> {
        let first = self.rx.recv().ok()?;
        let mut buf = vec![first];
        while let Ok(b) = self.rx.try_recv() {
            buf.push(b);
            if buf.len() >= 256 {
                break;
            }
        }
        Some(buf)
    }

    /// Waits for bytes with a timeout.
    pub fn recv_timeout(&self, d: Duration) -> Option<Vec<u8>> {
        let first = self.rx.recv_timeout(d).ok()?;
        let mut buf = vec![first];
        while let Ok(b) = self.rx.try_recv() {
            buf.push(b);
            if buf.len() >= 256 {
                break;
            }
        }
        Some(buf)
    }

    /// Changes the line speed (`b1200` → `set_baud(1200)`).
    pub fn set_baud(&self, baud: u32) {
        self.baud.store(baud.max(1), Ordering::Relaxed);
    }

    /// The current line speed.
    pub fn baud(&self) -> u32 {
        self.baud.load(Ordering::Relaxed)
    }
}

/// Creates a full-duplex serial line at the given baud rate.
///
/// Each end has its own transmit pacing but both share the configured
/// rate, as two UARTs on one line must.
pub fn uart_pair(baud: u32) -> (UartEnd, UartEnd) {
    let shared = Arc::new(AtomicU32::new(baud.max(1)));
    let (atx, arx) = unbounded();
    let (btx, brx) = unbounded();
    (
        UartEnd {
            baud: Arc::clone(&shared),
            tx: atx,
            rx: brx,
        },
        UartEnd {
            baud: shared,
            tx: btx,
            rx: arx,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_cross_the_line() {
        let (a, b) = uart_pair(1_000_000);
        a.send(b"hello").unwrap();
        let mut got = Vec::new();
        while got.len() < 5 {
            got.extend(b.recv().unwrap());
        }
        assert_eq!(got, b"hello");
    }

    #[test]
    fn pacing_matches_baud() {
        // 9600 baud = 960 bytes/s; 24 bytes ≈ 25 ms.
        let (a, b) = uart_pair(9600);
        let start = Instant::now();
        a.send(&[0u8; 24]).unwrap();
        let mut got = 0;
        while got < 24 {
            got += b.recv().unwrap().len();
        }
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn set_baud_takes_effect() {
        let (a, b) = uart_pair(300);
        a.set_baud(1_000_000);
        assert_eq!(b.baud(), 1_000_000, "both ends share the rate");
        let start = Instant::now();
        a.send(&[0u8; 64]).unwrap();
        assert!(start.elapsed() < Duration::from_millis(300));
    }

    #[test]
    fn hangup_detected() {
        let (a, b) = uart_pair(1_000_000);
        drop(a);
        assert_eq!(b.recv(), None);
    }
}
