//! Simulated physical networks for the Plan 9 reproduction.
//!
//! The paper's system ran on real hardware: LANCE Ethernet boards, the
//! Datakit switch fabric, Cyclone VME fiber cards, UARTs. None of that
//! hardware is available here, so this crate provides in-process
//! simulations that preserve the properties the protocols above them
//! depend on:
//!
//! * **Pacing** — each medium has a bandwidth, a propagation delay, and a
//!   per-frame processing overhead (standing in for 25 MHz-era protocol
//!   processing). Real protocol code executing over a paced medium
//!   reproduces the *shape* of the paper's Table 1.
//! * **Shared-medium semantics** — [`ether`] is a true bus: one
//!   transmission serializes all stations and every station sees every
//!   frame, which is what makes promiscuous mode and packet-type copy
//!   semantics meaningful.
//! * **Circuit semantics** — [`fabric`] is a Datakit-style virtual
//!   circuit switch: calls are dialed by address string, carried in
//!   order, and hung up explicitly.
//! * **Failure injection** — wires can drop, duplicate, corrupt and
//!   reorder frames, so the reliable protocols (IL, TCP, URP) can be
//!   tested against the failures they claim to mask.
//!
//! Calibration profiles live in [`profile`]; the `calibrated` profile is
//! tuned so the Table 1 benchmark lands near the 1993 numbers, and the
//! `fast` profile removes pacing entirely for unit tests and modern-speed
//! measurements.

pub mod cyclone;
pub mod ether;
pub mod fabric;
pub mod pipe;
pub mod profile;
pub mod uart;
pub mod wire;

pub use cyclone::cyclone_link;
pub use ether::{EtherSegment, EtherStation, MacAddr, ETHER_HDR, ETHER_MTU};
pub use fabric::{Circuit, DatakitLine, DatakitSwitch, IncomingCall};
pub use pipe::{pipe_pair, PipeEnd};
pub use profile::{LinkProfile, Profiles};
pub use uart::{uart_pair, UartEnd};
pub use wire::{wire_pair, Medium, RecvOutcome, WireRx, WireStats, WireTx};

/// Errors from the simulation layer.
pub type SimError = String;

/// Result alias for simulation operations.
pub type Result<T> = std::result::Result<T, SimError>;
