//! Cyclone point-to-point fiber links (§7).
//!
//! "A link consists of two VME cards connected by a pair of optical
//! fibers ... drive the lines at 125 Mbit/sec. Software in the VME card
//! reduces latency by copying messages from system memory to fiber
//! without intermediate buffering." The simulated link is a reliable,
//! ordered, full-duplex frame pipe whose calibrated profile reflects the
//! VME-copy-limited effective throughput the paper measured (3.2 MB/s).

use crate::profile::LinkProfile;
use crate::wire::{wire_pair, Medium, RecvOutcome, WireRx, WireTx};
use plan9_support::sync::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// One end of a Cyclone link.
pub struct CycloneEnd {
    tx: WireTx,
    rx: Mutex<WireRx>,
}

impl CycloneEnd {
    /// Sends one message; the VME card preserves message boundaries.
    pub fn send(&self, frame: &[u8]) -> crate::Result<()> {
        self.tx.send(frame)
    }

    /// Blocks for the next message; `None` means the far end is gone.
    pub fn recv(&self) -> Option<Vec<u8>> {
        self.rx.lock().recv()
    }

    /// Waits for a message until the timeout elapses.
    pub fn recv_timeout(&self, d: Duration) -> RecvOutcome {
        self.rx.lock().recv_timeout(d)
    }

    /// The largest message the link carries.
    pub fn mtu(&self) -> usize {
        self.tx.medium().profile().mtu
    }

    /// The medium of this end's *transmit* fiber. A full-duplex link is
    /// two independent fibers; reach the other direction through the
    /// other end's `medium()`.
    pub fn medium(&self) -> &Arc<Medium> {
        self.tx.medium()
    }
}

/// Creates a full-duplex Cyclone link (two fibers, one per direction).
pub fn cyclone_link(profile: LinkProfile) -> (CycloneEnd, CycloneEnd) {
    let (a2b_tx, a2b_rx) = wire_pair(profile.clone());
    let (b2a_tx, b2a_rx) = wire_pair(profile);
    (
        CycloneEnd {
            tx: a2b_tx,
            rx: Mutex::named(b2a_rx, "netsim.cyclone.rx"),
        },
        CycloneEnd {
            tx: b2a_tx,
            rx: Mutex::named(a2b_rx, "netsim.cyclone.rx"),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profiles;

    #[test]
    fn full_duplex_round_trip() {
        let (a, b) = cyclone_link(Profiles::cyclone_fast());
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
    }

    #[test]
    fn large_messages_up_to_mtu() {
        let (a, b) = cyclone_link(Profiles::cyclone_fast());
        let msg = vec![0xCD; a.mtu()];
        a.send(&msg).unwrap();
        assert_eq!(b.recv().unwrap(), msg);
        assert!(a.send(&vec![0u8; a.mtu() + 1]).is_err());
    }

    #[test]
    fn hangup_on_drop() {
        let (a, b) = cyclone_link(Profiles::cyclone_fast());
        drop(a);
        assert_eq!(b.recv(), None);
    }

    #[test]
    fn directions_are_independent() {
        // A send in one direction doesn't block the other direction.
        let (a, b) = cyclone_link(Profiles::cyclone_fast());
        for i in 0..10u8 {
            a.send(&[i]).unwrap();
            b.send(&[i + 100]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap(), &[i]);
            assert_eq!(a.recv().unwrap(), &[i + 100]);
        }
    }
}
