//! A shared-medium Ethernet segment.
//!
//! "Connections from the servers fan out to local terminals using medium
//! speed networks such as Ethernet." The segment is a true bus: every
//! transmission serializes all stations on one medium, and every station
//! receives a copy of every frame. Address and packet-type filtering is
//! done *above*, in the Ethernet device driver, because Plan 9's driver
//! supports per-conversation packet types, the `-1` receive-everything
//! type, and promiscuous mode (§2.2) — all of which need the raw feed.

use crate::profile::LinkProfile;
use crate::wire::Medium;
use plan9_support::chan::{unbounded, Receiver, RecvTimeoutError, Sender};
use plan9_support::sync::Mutex;
use plan9_support::wheel;
use std::sync::Arc;
use plan9_support::time;
use std::time::{Duration, Instant};

/// A six-byte station address.
pub type MacAddr = [u8; 6];

/// The broadcast address.
pub const BROADCAST: MacAddr = [0xff; 6];

/// Bytes of Ethernet header: dst(6) + src(6) + type(2).
pub const ETHER_HDR: usize = 14;

/// Largest frame (header + payload).
pub const ETHER_MTU: usize = 1514;

/// Formats a MAC address the way Plan 9's ndb does: 12 hex digits.
pub fn mac_to_string(m: &MacAddr) -> String {
    m.iter().map(|b| format!("{b:02x}")).collect()
}

/// Parses a 12-hex-digit MAC address.
pub fn mac_from_string(s: &str) -> Option<MacAddr> {
    if s.len() != 12 {
        return None;
    }
    let mut m = [0u8; 6];
    for i in 0..6 {
        m[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
    }
    Some(m)
}

/// An assembled Ethernet frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EtherFrame {
    /// Destination station.
    pub dst: MacAddr,
    /// Source station.
    pub src: MacAddr,
    /// Packet type (0x0800 = IP, 0x0806 = ARP, ...).
    pub ethertype: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl EtherFrame {
    /// Serializes the frame for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(ETHER_HDR + self.payload.len());
        buf.extend_from_slice(&self.dst);
        buf.extend_from_slice(&self.src);
        buf.extend_from_slice(&self.ethertype.to_be_bytes());
        buf.extend_from_slice(&self.payload);
        buf
    }

    /// Parses a frame from wire bytes.
    pub fn decode(buf: &[u8]) -> Option<EtherFrame> {
        if buf.len() < ETHER_HDR {
            return None;
        }
        Some(EtherFrame {
            dst: buf.get(0..6)?.try_into().ok()?,
            src: buf.get(6..12)?.try_into().ok()?,
            ethertype: u16::from_be_bytes([buf[12], buf[13]]),
            payload: buf[ETHER_HDR..].to_vec(),
        })
    }
}

struct InFlight {
    deliver_at: Instant,
    frame: Arc<Vec<u8>>,
}

/// A push-mode receive callback; see [`EtherStation::set_rx_handler`].
pub type RxHandler = Arc<dyn Fn(EtherFrame) + Send + Sync>;

struct StationSlot {
    id: u64,
    addr: MacAddr,
    tx: Sender<InFlight>,
    /// Push-mode delivery: the pool shard key and the handler. When
    /// set, frames bypass the pull queue entirely.
    handler: Option<(u64, RxHandler)>,
    /// Hardware address filter: when set, the controller only accepts
    /// frames addressed to this station or to the broadcast address.
    /// Default is promiscuous (bridges and wire sniffers need every
    /// frame); endpoint stacks opt in so a busy shared segment costs
    /// each host only its own traffic.
    filtered: bool,
}

/// A shared Ethernet segment: attach stations, then send and receive.
pub struct EtherSegment {
    medium: Arc<Medium>,
    stations: Mutex<Vec<StationSlot>>,
}

impl EtherSegment {
    /// Creates a segment with the given link profile.
    pub fn new(profile: LinkProfile) -> Arc<EtherSegment> {
        Arc::new(EtherSegment {
            medium: Medium::new(profile),
            stations: Mutex::named(Vec::new(), "netsim.ether.stations"),
        })
    }

    /// Attaches a station with the given address.
    pub fn attach(self: &Arc<Self>, addr: MacAddr) -> EtherStation {
        let (tx, rx) = unbounded();
        let mut stations = self.stations.lock();
        let id = stations.len() as u64;
        stations.push(StationSlot { id, addr, tx, handler: None, filtered: false });
        drop(stations);
        EtherStation {
            addr,
            id,
            segment: Arc::clone(self),
            rx,
        }
    }

    /// Number of attached stations.
    pub fn station_count(&self) -> usize {
        self.stations.lock().len()
    }

    /// The MTU of this segment.
    pub fn mtu(&self) -> usize {
        self.medium.profile().mtu
    }

    /// The shared medium under this segment (for its frame counters).
    pub fn medium(&self) -> &Arc<Medium> {
        &self.medium
    }

    /// Transmits raw frame bytes from `from`, delivering a copy to every
    /// *other* station (bus semantics; controllers do not hear their own
    /// transmissions).
    fn broadcast(&self, from: MacAddr, frame: &[u8]) -> crate::Result<()> {
        if frame.len() > self.medium.profile().mtu {
            return Err(format!(
                "ether frame of {} bytes exceeds mtu {}",
                frame.len(),
                self.medium.profile().mtu
            ));
        }
        // The wire-delivery span: bus acquisition plus serialization,
        // attributed to whatever RPC is transmitting on this thread.
        let cur = plan9_netlog::trace::current();
        let t0 = cur.as_ref().map(|_| time::now());
        // Seize the bus for the transmission time.
        let done = self.medium.transmit(frame.len());
        if let (Some(h), Some(t0)) = (&cur, t0) {
            h.span(
                plan9_netlog::Facility::Ether,
                &format!("wire tx {}B", frame.len()),
                t0,
                time::now(),
            );
        }
        let mut f = frame.to_vec();
        let (copies, extra) = self.medium_impair(&mut f);
        if copies == 0 {
            return Ok(());
        }
        let deliver_at = done + self.medium.profile().propagation + extra;
        // One shared copy of the wire bytes feeds every station's timer
        // event: a broadcast on a 250-host city segment costs one
        // allocation, not 250 memcpys. Decoding still happens per
        // delivery (each handler owns its frame), but from shared bytes.
        let shared: Arc<Vec<u8>> = Arc::new(f);
        // The destination address straight off the wire, for the
        // controllers' hardware filters.
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&shared[..6]);
        let bcast = dst == BROADCAST;
        let stations = self.stations.lock();
        for s in stations.iter() {
            if s.addr == from {
                continue;
            }
            if s.filtered && !bcast && dst != s.addr {
                continue;
            }
            match &s.handler {
                Some((key, h)) => {
                    // Push mode: arrival is a timer-wheel event at the
                    // propagation deadline; the wheel dispatches the
                    // decoded frame to the station's pool shard, which
                    // serializes per-station deliveries. A failed
                    // schedule (thread exhaustion at worker spawn)
                    // drops the frame — something this lossy medium is
                    // allowed to do anyway.
                    for _ in 0..copies {
                        let h = Arc::clone(h);
                        let frame = Arc::clone(&shared);
                        let _ = wheel::schedule(*key, deliver_at, move || {
                            if let Some(fr) = EtherFrame::decode(&frame) {
                                h(fr);
                            }
                        });
                    }
                }
                None => {
                    for _ in 0..copies {
                        let _ = s.tx.send(InFlight {
                            deliver_at,
                            frame: Arc::clone(&shared),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn medium_impair(&self, f: &mut [u8]) -> (usize, Duration) {
        self.medium.impair(f)
    }
}

/// One station (interface) on a segment.
pub struct EtherStation {
    /// The station's address.
    pub addr: MacAddr,
    id: u64,
    segment: Arc<EtherSegment>,
    rx: Receiver<InFlight>,
}

impl EtherStation {
    /// Transmits a frame; the source address is stamped from the station.
    pub fn send(&self, dst: MacAddr, ethertype: u16, payload: &[u8]) -> crate::Result<()> {
        let frame = EtherFrame {
            dst,
            src: self.addr,
            ethertype,
            payload: payload.to_vec(),
        };
        self.segment.broadcast(self.addr, &frame.encode())
    }

    /// Transmits pre-encoded frame bytes (the driver's `data` file path).
    pub fn send_raw(&self, frame: &[u8]) -> crate::Result<()> {
        self.segment.broadcast(self.addr, frame)
    }

    /// Blocks for the next frame on the wire (unfiltered).
    pub fn recv(&self) -> Option<EtherFrame> {
        let inflight = self.rx.recv().ok()?;
        wait_until(inflight.deliver_at);
        EtherFrame::decode(&inflight.frame)
    }

    /// Waits for a frame until the timeout elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<EtherFrame> {
        let deadline = time::now() + timeout;
        let inflight = match self.rx.recv_timeout(timeout) {
            Ok(f) => f,
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => return None,
        };
        // Honor propagation, but never past the caller's deadline by much:
        // frames are small and the delay is tens of microseconds.
        let _ = deadline;
        wait_until(inflight.deliver_at);
        EtherFrame::decode(&inflight.frame)
    }

    /// Switches the station to push mode: instead of queueing frames
    /// for [`recv`](EtherStation::recv), each arrival becomes a timer
    /// event at its propagation deadline, dispatched (decoded) to
    /// `handler` on the worker-pool shard for `key`. No receiver
    /// thread is needed, so a fabric of thousands of stations runs on
    /// O(cores) threads. Deliveries to one station are serialized by
    /// the shared shard key; the handler must not block on virtual
    /// time (it runs on a pool worker).
    /// Engages (or releases) the controller's hardware address filter:
    /// when on, only frames for this station's address or the broadcast
    /// address are accepted. Off by default — a bridge must stay
    /// promiscuous — but an endpoint stack should switch it on, so a
    /// shared segment of hundreds of hosts charges each one for its own
    /// traffic instead of the whole bus's.
    pub fn set_address_filter(&self, on: bool) {
        let mut stations = self.segment.stations.lock();
        if let Some(slot) = stations.iter_mut().find(|s| s.id == self.id) {
            slot.filtered = on;
        }
    }

    pub fn set_rx_handler(
        &self,
        key: u64,
        handler: impl Fn(EtherFrame) + Send + Sync + 'static,
    ) {
        let mut stations = self.segment.stations.lock();
        if let Some(slot) = stations.iter_mut().find(|s| s.id == self.id) {
            slot.handler = Some((key, Arc::new(handler)));
        }
    }

    /// The maximum payload this station can send.
    pub fn payload_mtu(&self) -> usize {
        self.segment.mtu() - ETHER_HDR
    }

    /// The segment's shared medium (for its frame counters).
    pub fn medium(&self) -> &Arc<Medium> {
        self.segment.medium()
    }
}

fn wait_until(t: Instant) {
    let now = time::now();
    if t > now {
        time::sleep(t - now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profiles;

    fn mac(n: u8) -> MacAddr {
        [0x08, 0x00, 0x69, 0x02, 0x22, n]
    }

    #[test]
    fn frame_codec_round_trip() {
        let f = EtherFrame {
            dst: BROADCAST,
            src: mac(1),
            ethertype: 0x0800,
            payload: b"payload".to_vec(),
        };
        assert_eq!(EtherFrame::decode(&f.encode()).unwrap(), f);
        assert!(EtherFrame::decode(&[0u8; 5]).is_none());
    }

    #[test]
    fn mac_string_round_trip() {
        let m = mac(0xf0);
        assert_eq!(mac_to_string(&m), "08006902 22f0".replace(' ', ""));
        assert_eq!(mac_from_string(&mac_to_string(&m)).unwrap(), m);
        assert!(mac_from_string("xyz").is_none());
    }

    #[test]
    fn every_other_station_hears() {
        let seg = EtherSegment::new(Profiles::ether_fast());
        let a = seg.attach(mac(1));
        let b = seg.attach(mac(2));
        let c = seg.attach(mac(3));
        a.send(mac(2), 0x0800, b"to b").unwrap();
        // Both b and c hear it (bus); the driver filters by address.
        assert_eq!(b.recv().unwrap().payload, b"to b");
        assert_eq!(c.recv().unwrap().payload, b"to b");
        assert!(a.recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn shared_medium_serializes_senders() {
        // With a 1 Mbit/s bus, 8 frames of 1250 bytes take 80 ms even
        // when sent from two stations concurrently.
        let profile = crate::profile::LinkProfile {
            bandwidth_bps: 1_000_000,
            ..Profiles::ether_fast()
        };
        let seg = EtherSegment::new(profile);
        let a = seg.attach(mac(1));
        let b = seg.attach(mac(2));
        let c = seg.attach(mac(3));
        let start = Instant::now();
        let ha = std::thread::spawn(move || {
            for _ in 0..4 {
                a.send(mac(3), 1, &[0u8; 1250]).unwrap();
            }
        });
        let hb = std::thread::spawn(move || {
            for _ in 0..4 {
                b.send(mac(3), 1, &[0u8; 1250]).unwrap();
            }
        });
        ha.join().unwrap();
        hb.join().unwrap();
        let mut got = 0;
        while c.recv_timeout(Duration::from_millis(100)).is_some() {
            got += 1;
            if got == 8 {
                break;
            }
        }
        assert_eq!(got, 8);
        assert!(start.elapsed() >= Duration::from_millis(75));
    }

    #[test]
    fn mtu_enforced() {
        let seg = EtherSegment::new(Profiles::ether_fast());
        let a = seg.attach(mac(1));
        let _b = seg.attach(mac(2));
        assert!(a.send(mac(2), 1, &vec![0u8; 1600]).is_err());
    }
}
