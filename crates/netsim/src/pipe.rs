//! In-memory pipes: the fastest path in Table 1.
//!
//! Pipes are asynchronous communication channels implemented with
//! streams in Plan 9 (§2.4); here the simulated medium is simply an
//! unpaced, delimiter-preserving duplex channel — memory speed, like the
//! paper's pipes row.

use plan9_support::chan::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// One end of a duplex pipe.
pub struct PipeEnd {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl PipeEnd {
    /// Sends one delimited message.
    pub fn send(&self, frame: &[u8]) -> crate::Result<()> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| "pipe: peer gone".to_string())
    }

    /// Blocks for the next message; `None` on hangup.
    pub fn recv(&self) -> Option<Vec<u8>> {
        self.rx.recv().ok()
    }

    /// Waits for a message until the timeout elapses; `Ok(None)` on
    /// hangup, `Err(())` on timeout.
    #[allow(clippy::result_unit_err)] // the unit error *is* the timeout; no detail to carry
    pub fn recv_timeout(&self, d: Duration) -> Result<Option<Vec<u8>>, ()> {
        match self.rx.recv_timeout(d) {
            Ok(f) => Ok(Some(f)),
            Err(RecvTimeoutError::Disconnected) => Ok(None),
            Err(RecvTimeoutError::Timeout) => Err(()),
        }
    }
}

/// Creates a connected pair of pipe ends.
pub fn pipe_pair() -> (PipeEnd, PipeEnd) {
    let (atx, arx) = unbounded();
    let (btx, brx) = unbounded();
    (PipeEnd { tx: atx, rx: brx }, PipeEnd { tx: btx, rx: arx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_and_delimited() {
        let (a, b) = pipe_pair();
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        b.send(b"back").unwrap();
        assert_eq!(b.recv().unwrap(), b"one");
        assert_eq!(b.recv().unwrap(), b"two");
        assert_eq!(a.recv().unwrap(), b"back");
    }

    #[test]
    fn hangup() {
        let (a, b) = pipe_pair();
        drop(a);
        assert_eq!(b.recv(), None);
        assert!(b.send(b"x").is_err());
    }

    #[test]
    fn timeout() {
        let (_a, b) = pipe_pair();
        assert_eq!(b.recv_timeout(Duration::from_millis(10)), Err(()));
    }
}
