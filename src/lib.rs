//! Facade crate for the Plan 9 networks reproduction.
//!
//! Re-exports every subsystem crate under one name so the examples and
//! integration tests read naturally. See `README.md` and `DESIGN.md` for
//! the system map.

pub use plan9_core as core;
pub use plan9_cs as cs;
pub use plan9_datakit as datakit;
pub use plan9_exportfs as exportfs;
pub use plan9_inet as inet;
pub use plan9_ndb as ndb;
pub use plan9_netlog as netlog;
pub use plan9_netsim as netsim;
pub use plan9_ninep as ninep;
pub use plan9_scenario as scenario;
pub use plan9_streams as streams;
