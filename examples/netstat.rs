//! netstat: walk `/net` on a live simulated host and print every
//! connection plus the stats tree.
//!
//! Two machines share a lossy Ethernet; gnot turns on IL tracing via
//! `/net/log/ctl`, dials an echo service on helix, and then reads the
//! network state back out of the file tree the way Plan 9 tools do:
//! connection directories for the conversations, `stats` files for the
//! counters, `/net/log/data` for the event trace.
//!
//! Run with `cargo run --example netstat`; with `-- --json` the same
//! state is emitted as one JSON document on stdout for scripts.

use plan9::core::dial::{accept, announce, dial, listen};
use plan9::core::machine::MachineBuilder;
use plan9::core::proc::Proc;
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::profile::Profiles;
use plan9::ninep::procfs::OpenMode;
use plan9_support::json::quote;

/// One row per conversation of every protocol directory, like
/// `netstat(8)`: the status file already carries proto/conn, state and
/// endpoints.
fn conn_rows(p: &Proc) -> Vec<(String, String, String, String)> {
    let mut rows = Vec::new();
    for proto in ["il", "tcp", "udp"] {
        let Ok(entries) = p.ls(&format!("/net/{proto}")) else {
            continue;
        };
        for d in entries {
            if d.name.parse::<usize>().is_err() {
                continue;
            }
            let dir = format!("/net/{proto}/{}", d.name);
            let read_file = |name: &str| -> String {
                let Ok(fd) = p.open(&format!("{dir}/{name}"), OpenMode::READ) else {
                    return String::new();
                };
                let text = p.read_string(fd).unwrap_or_default();
                p.close(fd);
                text.trim_end().to_string()
            };
            rows.push((
                format!("{proto}/{}", d.name),
                read_file("local"),
                read_file("remote"),
                read_file("status"),
            ));
        }
    }
    rows
}

fn read_path(p: &Proc, path: &str) -> String {
    let fd = p.open(path, OpenMode::READ).expect("open");
    let text = p.read_string(fd).expect("read");
    p.close(fd);
    text
}

fn cat(p: &Proc, path: &str) {
    println!("\ngnot% cat {path}");
    print!("{}", read_path(p, path));
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    // A 10 Mbit/s Ethernet that loses and duplicates a few frames, so
    // the stats tree has something to say.
    let profile = Profiles::ether_fast().with_loss(0.03).with_dup(0.02);
    let seg = EtherSegment::new(profile);
    let ndb = "\
sys=helix dom=helix.research.bell-labs.com ip=135.104.9.31 proto=il proto=tcp
sys=gnot ip=135.104.9.40 proto=il proto=tcp
";
    let helix = MachineBuilder::new("helix")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0xf0], IpConfig::local("135.104.9.31"))
        .ndb(ndb)
        .build()
        .expect("boot helix");
    let gnot = MachineBuilder::new("gnot")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0x40], IpConfig::local("135.104.9.40"))
        .ndb(ndb)
        .build()
        .expect("boot gnot");

    let p = gnot.proc();

    // Turn on IL tracing before any traffic: netlog is a ctl write.
    if !json {
        println!("gnot% echo set il > /net/log/ctl");
    }
    let ctl = p.open("/net/log/ctl", OpenMode::RDWR).expect("open log ctl");
    p.write_str(ctl, "set il").expect("set il");

    // An echo service on helix.
    let hp = helix.proc();
    std::thread::spawn(move || {
        let (_afd, adir) = announce(&hp, "il!*!echo").expect("announce");
        loop {
            let Ok((lcfd, ldir)) = listen(&hp, &adir) else { return };
            let Ok(dfd) = accept(&hp, lcfd, &ldir) else { return };
            while let Ok(msg) = hp.read(dfd, 8192) {
                if msg.is_empty() {
                    break;
                }
                let _ = hp.write(dfd, &msg);
            }
            hp.close(dfd);
            hp.close(lcfd);
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Dial and push enough traffic through the lossy wire for IL's
    // recovery machinery to earn its keep.
    let conn = dial(&p, "net!helix!echo").expect("dial net!helix!echo");
    let payload = vec![0x55u8; 512];
    for _ in 0..30 {
        p.write(conn.data_fd, &payload).expect("write");
        let reply = p.read(conn.data_fd, 8192).expect("read");
        assert_eq!(reply.len(), payload.len());
    }

    // Conversation directories appear when the clone file is opened,
    // as in Figure 1.
    let eclone = p.open("/net/ether0/clone", OpenMode::RDWR).expect("ether clone");

    if json {
        // Everything the prose mode prints, as one JSON document.
        let conns: Vec<String> = conn_rows(&p)
            .into_iter()
            .map(|(c, l, r, s)| {
                format!(
                    "{{\"conn\": {}, \"local\": {}, \"remote\": {}, \"status\": {}}}",
                    quote(&c),
                    quote(&l),
                    quote(&r),
                    quote(&s)
                )
            })
            .collect();
        let log_lines: Vec<String> = read_path(&p, "/net/log/data")
            .lines()
            .map(quote)
            .collect();
        let lock_lines: Vec<String> = read_path(&p, "/net/log/lockgraph")
            .lines()
            .map(quote)
            .collect();
        println!("{{");
        println!("  \"conns\": [{}],", conns.join(", "));
        println!(
            "  \"stats\": {{\"il\": {}, \"ether0\": {}}},",
            quote(&read_path(&p, "/net/il/stats")),
            quote(&read_path(&p, "/net/ether0/1/stats"))
        );
        println!("  \"log\": [{}],", log_lines.join(", "));
        println!("  \"lockgraph\": [{}]", lock_lines.join(", "));
        println!("}}");
    } else {
        // The connection table, straight out of the name space.
        println!("\ngnot% netstat");
        for (c, l, r, s) in conn_rows(&p) {
            println!("{c:<12} {l:<24} {r:<24} {s}");
        }

        // The protocol counters: IL with its adaptive-RTT histogram,
        // then the interface and the wire under it.
        cat(&p, "/net/il/stats");
        cat(&p, "/net/ether0/1/stats");

        // The IL event trace collected since `set il`.
        cat(&p, "/net/log/data");

        // The runtime lock-order graph lockdep has observed so far
        // (debug builds; release serves a one-line marker).
        cat(&p, "/net/log/lockgraph");
    }

    // `clear` zeroes the mask and flushes the ring.
    if !json {
        println!("\ngnot% echo clear > /net/log/ctl");
    }
    p.write_str(ctl, "clear").expect("clear");
    let fd = p.open("/net/log/data", OpenMode::READ).expect("open log data");
    let drained = p.read_string(fd).expect("read");
    assert!(drained.is_empty(), "log not flushed: {drained}");
    p.close(fd);

    p.close(eclone);
    p.close(conn.data_fd);
    p.close(conn.ctl_fd);
    p.close(ctl);
    if !json {
        println!("\nnetstat: OK");
    }
}
