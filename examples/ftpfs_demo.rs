//! ftpfs (§6.2): FTP presented as a file system, with caching.
//!
//! A file-server machine runs an FTP daemon; the terminal dials its FTP
//! port, logs in, sets image mode, and mounts the remote tree on
//! `/n/ftp`. Reads hit the cache after the first fetch; a created file
//! appears on the server immediately.
//!
//! Run with `cargo run --example ftpfs_demo`.

use plan9::core::machine::MachineBuilder;
use plan9::core::namespace::MREPL;
use plan9::exportfs::ftpd::FtpServer;
use plan9::exportfs::ftpfs::FtpFs;
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::profile::Profiles;
use plan9::ninep::procfs::{OpenMode, ProcFs};
use std::sync::Arc;

fn main() {
    let seg = EtherSegment::new(Profiles::ether_fast());
    let ndb = "sys=tops20 ip=10.0.0.1 proto=tcp\nsys=term ip=10.0.0.2 proto=tcp\n";
    let server = MachineBuilder::new("tops20")
        .ether(&seg, [8, 0, 0, 0, 0, 1], IpConfig::local("10.0.0.1"))
        .ndb(ndb)
        .build()
        .expect("boot server");
    let term = MachineBuilder::new("term")
        .ether(&seg, [8, 0, 0, 0, 0, 2], IpConfig::local("10.0.0.2"))
        .ndb(ndb)
        .build()
        .expect("boot term");

    // The remote FTP site with some files.
    let ftpd = Arc::new(FtpServer::new("guest"));
    ftpd.tree
        .put_file("/pub/README", b"welcome to the simulated TOPS-20\n")
        .expect("seed");
    ftpd.tree
        .put_file("/pub/papers/plan9.ps", vec![0x25; 4096].as_slice())
        .expect("seed");
    Arc::clone(&ftpd)
        .serve(server.proc(), 4)
        .expect("start ftpd");
    std::thread::sleep(std::time::Duration::from_millis(150));

    // ftpfs: dial, login, mount on /n/ftp.
    let p = term.proc();
    println!("term% ftpfs -m /n/ftp tcp!tops20!ftp");
    let ftpfs = FtpFs::dial_and_login(term.proc(), "tcp!tops20!ftp", "philw", "guest")
        .expect("ftp login");
    let fs: Arc<dyn ProcFs> = ftpfs.clone();
    p.mount_fs(&fs, "", "/n/ftp", MREPL).expect("mount ftpfs");

    println!("term% ls /n/ftp/pub");
    for d in p.ls("/n/ftp/pub").expect("ls") {
        println!("{}", d.ls_line());
    }

    let fd = p.open("/n/ftp/pub/README", OpenMode::READ).expect("open");
    print!("term% cat /n/ftp/pub/README\n{}", p.read_string(fd).expect("read"));
    p.close(fd);

    // Second read comes from the cache: round trips must not grow.
    let before = ftpfs.round_trips.get();
    let fd = p.open("/n/ftp/pub/README", OpenMode::READ).expect("open");
    let _ = p.read_string(fd).expect("read");
    p.close(fd);
    let after = ftpfs.round_trips.get();
    println!("(second cat used the cache: {before} -> {after} round trips)");
    assert_eq!(before, after);

    // Creating a file updates the cache and the remote site.
    let fd = p
        .create("/n/ftp/pub/NOTE", 0o644, OpenMode::WRITE)
        .expect("create");
    p.write(fd, b"left by ftpfs\n").expect("write");
    p.close(fd);
    // Verify on the server's own tree.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let root = ftpd.tree.attach("ftp", "").expect("attach");
    let node = plan9::ninep::procfs::walk_path(&*ftpd.tree, &root, "pub/NOTE").expect("walk");
    let node = ftpd.tree.open(&node, OpenMode::READ).expect("open");
    let remote = ftpd.tree.read(&node, 0, 100).expect("read");
    println!("server sees pub/NOTE: {:?}", String::from_utf8_lossy(&remote));
    assert_eq!(remote, b"left by ftpfs\n");
    println!("\nftpfs_demo: OK");
}
