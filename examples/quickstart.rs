//! Quickstart: boot two Plan 9 machines on one Ethernet, look at `/net`,
//! ask the connection server for a translation, and dial an echo
//! service.
//!
//! Run with `cargo run --example quickstart`.

use plan9::core::dial::{accept, announce, dial, listen};
use plan9::core::machine::MachineBuilder;
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::profile::Profiles;
use plan9::ninep::procfs::OpenMode;

fn main() {
    // One shared 10 Mbit/s Ethernet segment (unpaced for the demo).
    let seg = EtherSegment::new(Profiles::ether_fast());
    // The network database both machines read (§4.1).
    let ndb = "\
sys=helix dom=helix.research.bell-labs.com ip=135.104.9.31 proto=il proto=tcp
sys=gnot ip=135.104.9.40 proto=il proto=tcp
";
    let helix = MachineBuilder::new("helix")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0xf0], IpConfig::local("135.104.9.31"))
        .ndb(ndb)
        .build()
        .expect("boot helix");
    let gnot = MachineBuilder::new("gnot")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0x40], IpConfig::local("135.104.9.40"))
        .ndb(ndb)
        .build()
        .expect("boot gnot");

    // Every resource is a file: look at the conventional /net.
    let p = gnot.proc();
    println!("gnot% ls /net");
    for d in p.ls("/net").expect("ls /net") {
        println!("/net/{}", d.name);
    }

    // Ask CS to translate a symbolic name (§4.2).
    println!("\ngnot% ndb/csquery");
    println!("> net!helix!9fs");
    let fd = p.open("/net/cs", OpenMode::RDWR).expect("open /net/cs");
    p.write_str(fd, "net!helix!9fs").expect("write query");
    loop {
        let line = p.read(fd, 256).expect("read cs");
        if line.is_empty() {
            break;
        }
        println!("{}", String::from_utf8_lossy(&line));
    }
    p.close(fd);

    // An echo server on helix (the §5.2 pattern).
    let hp = helix.proc();
    std::thread::spawn(move || {
        let (_afd, adir) = announce(&hp, "il!*!echo").expect("announce");
        loop {
            let Ok((lcfd, ldir)) = listen(&hp, &adir) else { return };
            let Ok(dfd) = accept(&hp, lcfd, &ldir) else { return };
            while let Ok(msg) = hp.read(dfd, 8192) {
                if msg.is_empty() {
                    break;
                }
                let _ = hp.write(dfd, &msg);
            }
            hp.close(dfd);
            hp.close(lcfd);
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Dial it by name and exchange a message.
    let conn = dial(&p, "net!helix!echo").expect("dial net!helix!echo");
    println!("\ngnot% echo through {} ...", conn.dir);
    p.write(conn.data_fd, b"hello from the gnot").expect("write");
    let reply = p.read(conn.data_fd, 8192).expect("read");
    println!("reply: {}", String::from_utf8_lossy(&reply));

    // The connection is a directory of files; read its status.
    let st = p
        .open(&format!("{}/status", conn.dir), OpenMode::READ)
        .expect("open status");
    print!("status: {}", p.read_string(st).expect("read status"));
    p.close(st);
    p.close(conn.data_fd);
    p.close(conn.ctl_fd);
    println!("\nquickstart: OK");
}
