//! The paper's §5.2 listing, translated: a TCP echo server built from
//! `announce`/`listen`/`accept`, with a "fork a process to echo" per
//! call, exercised by three concurrent clients.
//!
//! Run with `cargo run --example echo_server`.

use plan9::core::dial::{accept, announce, dial, listen};
use plan9::core::machine::MachineBuilder;
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::profile::Profiles;

/// The paper's echo_server(), in Rust. Returns after serving `calls`
/// connections so the example terminates.
fn echo_server(hp: plan9::core::proc::Proc, calls: usize) -> plan9::core::Result<()> {
    let (_afd, adir) = announce(&hp, "tcp!*!echo")?;
    println!("[server] announced tcp!*!echo at {adir}");
    for _ in 0..calls {
        // Listen for a call.
        let (lcfd, ldir) = listen(&hp, &adir)?;
        // Fork a process to echo; the new connection's ctl descriptor
        // moves to the child, as after fork() in the paper's listing.
        let (wp, wlcfd) = hp.fork_with_fd(lcfd);
        std::thread::spawn(move || {
            // Accept the call and open the data file.
            let Ok(dfd) = accept(&wp, wlcfd, &ldir) else {
                return;
            };
            // Echo until EOF.
            while let Ok(n) = wp.read(dfd, 256) {
                if n.is_empty() {
                    break;
                }
                let _ = wp.write(dfd, &n);
            }
            wp.close(dfd);
            wp.close(wlcfd);
        });
    }
    Ok(())
}

fn main() {
    let seg = EtherSegment::new(Profiles::ether_fast());
    let ndb = "sys=server ip=10.0.0.1 proto=tcp\nsys=term ip=10.0.0.2 proto=tcp\n";
    let server = MachineBuilder::new("server")
        .ether(&seg, [8, 0, 0, 0, 0, 1], IpConfig::local("10.0.0.1"))
        .ndb(ndb)
        .build()
        .expect("boot server");
    let term = MachineBuilder::new("term")
        .ether(&seg, [8, 0, 0, 0, 0, 2], IpConfig::local("10.0.0.2"))
        .ndb(ndb)
        .build()
        .expect("boot term");

    let hp = server.proc();
    let srv = std::thread::spawn(move || echo_server(hp, 3).expect("echo server"));
    std::thread::sleep(std::time::Duration::from_millis(100));

    let mut clients = Vec::new();
    for i in 0..3 {
        let p = term.proc();
        clients.push(std::thread::spawn(move || {
            let conn = dial(&p, "tcp!server!echo").expect("dial");
            for round in 0..5 {
                let msg = format!("client {i} round {round}");
                p.write(conn.data_fd, msg.as_bytes()).expect("write");
                let mut got = Vec::new();
                while got.len() < msg.len() {
                    let part = p.read(conn.data_fd, 256).expect("read");
                    assert!(!part.is_empty(), "server hung up early");
                    got.extend(part);
                }
                assert_eq!(got, msg.as_bytes());
            }
            println!("[client {i}] echoed 5 rounds via {}", conn.dir);
            p.close(conn.data_fd);
            p.close(conn.ctl_fd);
        }));
    }
    for c in clients {
        c.join().expect("client");
    }
    srv.join().expect("server thread");
    println!("echo_server: OK");
}
