//! Reproduces the paper's §4.2 `ndb/csquery` sessions, including the
//! `$attr` meta-name search, against the paper's own database entries.
//!
//! Run with `cargo run --example csquery`.

use plan9::core::machine::MachineBuilder;
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::fabric::DatakitSwitch;
use plan9::netsim::profile::Profiles;
use plan9::ninep::procfs::OpenMode;

/// The §4.1 database: the CPU server entry, the Class B network with
/// its auth servers, and the service map (added by the machine).
const NDB: &str = "\
ipnet=mh-astro-net ip=135.104.0.0 ipmask=255.255.255.0
\tfs=bootes.research.bell-labs.com
\tauth=p9auth auth=musca
sys=helix
\tdom=helix.research.bell-labs.com
\tbootf=/mips/9power
\tip=135.104.9.31 ether=0800690222f0
\tdk=nj/astro/helix
\tproto=il flavor=9cpu
sys=p9auth ip=135.104.9.34 dk=nj/astro/p9auth proto=il
sys=musca ip=135.104.9.6 dk=nj/astro/musca proto=il
sys=gnot ip=135.104.9.40 dk=nj/astro/philw-gnot proto=il
";

fn csquery(p: &plan9::core::proc::Proc, query: &str) {
    println!("> {query}");
    let fd = p.open("/net/cs", OpenMode::RDWR).expect("open /net/cs");
    match p.write_str(fd, query) {
        Ok(_) => loop {
            let line = p.read(fd, 256).expect("read cs");
            if line.is_empty() {
                break;
            }
            println!("{}", String::from_utf8_lossy(&line));
        },
        Err(e) => println!("csquery: {e}"),
    }
    p.close(fd);
}

fn main() {
    let seg = EtherSegment::new(Profiles::ether_fast());
    let switch = DatakitSwitch::new(Profiles::datakit_fast());
    let gnot = MachineBuilder::new("gnot")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0x40], IpConfig::local("135.104.9.40"))
        .datakit(&switch, "nj/astro/philw-gnot")
        .ndb(NDB)
        .build()
        .expect("boot gnot");
    let p = gnot.proc();

    println!("% ndb/csquery");
    // The paper's first example: a file-server name.
    csquery(&p, "net!helix!9fs");
    println!();
    // The paper's second example: the $auth meta-name, searched most
    // closely associated with the source host, then its network.
    csquery(&p, "net!$auth!rexauth");
    println!();
    // Addresses work as well as names (§5.1).
    csquery(&p, "tcp!135.104.117.5!513");
    println!();
    // And errors are strings.
    csquery(&p, "net!nonesuch!9fs");
    println!("\ncsquery: OK");
}
