//! The §6.1 gateway: a terminal with only a Datakit line imports `/net`
//! from a CPU server and thereby reaches the server's Ethernet networks.
//!
//! ```text
//! philw-gnot% ls /net
//! /net/cs
//! /net/dk
//! philw-gnot% import -a helix /net
//! philw-gnot% ls /net        # now shows il, tcp, udp, ether0 too
//! ```
//!
//! Run with `cargo run --example import_gateway`.

use plan9::core::dial::{accept, announce, dial, listen};
use plan9::core::machine::MachineBuilder;
use plan9::core::namespace::MAFTER;
use plan9::exportfs::exportfs::exportfs_listener;
use plan9::exportfs::import::import;
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::fabric::DatakitSwitch;
use plan9::netsim::profile::Profiles;

fn ls_net(p: &plan9::core::proc::Proc, who: &str) {
    println!("{who}% ls /net");
    let mut names: Vec<String> = p
        .ls("/net")
        .expect("ls /net")
        .iter()
        .map(|d| format!("/net/{}", d.name))
        .collect();
    names.sort();
    for n in names {
        println!("{n}");
    }
}

fn main() {
    let seg = EtherSegment::new(Profiles::ether_fast());
    let switch = DatakitSwitch::new(Profiles::datakit_fast());
    let ndb = "\
sys=helix ip=135.104.9.31 dk=nj/astro/helix proto=il proto=tcp
sys=ai ip=135.104.9.80 dom=ai.mit.edu proto=tcp
sys=philw-gnot dk=nj/astro/philw-gnot
";
    // helix: CPU server with Ethernet *and* Datakit.
    let helix = MachineBuilder::new("helix")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0xf0], IpConfig::local("135.104.9.31"))
        .datakit(&switch, "nj/astro/helix")
        .ndb(ndb)
        .build()
        .expect("boot helix");
    // ai.mit.edu stands in for the far side of the Internet: a telnet
    // server on the same Ethernet.
    let ai = MachineBuilder::new("ai")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0x80], IpConfig::local("135.104.9.80"))
        .ndb(ndb)
        .build()
        .expect("boot ai");
    // The terminal has ONLY a Datakit line.
    let gnot = MachineBuilder::new("philw-gnot")
        .datakit(&switch, "nj/astro/philw-gnot")
        .ndb(ndb)
        .build()
        .expect("boot gnot");

    // A telnet-ish greeter on ai.
    let ap = ai.proc();
    std::thread::spawn(move || {
        let (_afd, adir) = announce(&ap, "tcp!*!telnet").expect("announce telnet");
        loop {
            let Ok((lcfd, ldir)) = listen(&ap, &adir) else { return };
            let Ok(dfd) = accept(&ap, lcfd, &ldir) else { return };
            let _ = ap.write(dfd, b"AI Lab ITS, no password needed\n");
            ap.close(dfd);
            ap.close(lcfd);
        }
    });

    // helix runs the exportfs listener on its Datakit line.
    exportfs_listener(helix.proc(), "dk!*!exportfs", usize::MAX).expect("exportfs listener");
    std::thread::sleep(std::time::Duration::from_millis(150));

    let p = gnot.proc();
    ls_net(&p, "philw-gnot");

    // import -a helix /net
    println!("\nphilw-gnot% import -a helix /net");
    import(&p, "dk!nj/astro/helix!exportfs", "/net", "/net", MAFTER).expect("import");
    ls_net(&p, "philw-gnot");

    // All the networks connected to helix are now available: telnet to
    // a TCP-only host from a Datakit-only terminal.
    println!("\nphilw-gnot% telnet ai.mit.edu");
    let conn = dial(&p, "tcp!ai.mit.edu!telnet").expect("dial through gateway");
    let banner = p.read(conn.data_fd, 256).expect("read banner");
    print!("{}", String::from_utf8_lossy(&banner));
    println!("(via {})", conn.dir);
    p.close(conn.data_fd);
    p.close(conn.ctl_fd);
    println!("\nimport_gateway: OK");
}
