//! tracerpc: follow one 9P RPC through every layer of the network.
//!
//! Two machines share a lossy Ethernet; helix exports its root over IL
//! and gnot imports it, so every file operation on gnot becomes a 9P
//! RPC carried by the full stack. Tracing is switched on the Plan 9
//! way — `echo trace on > /net/trace/ctl` — and the flight recorder
//! then captures, for each RPC, the marshal/transmit/reply partition
//! in the mount driver, the protocol device write, the IL send with
//! its retransmissions and queries, the IP and wire transmissions, and
//! (on the pipe-mounted second phase) the stream queue residency.
//!
//! The example prints a per-layer latency breakdown (p50/p99) and the
//! trace of a retransmitted RPC, whose inflated tail is the whole
//! point of causal tracing: the retransmit explains the outlier.
//!
//! Run with `cargo run --example tracerpc`; with `-- off` it runs the
//! same workload with tracing off and asserts the span ring stays
//! empty (the recorder must cost nothing when disabled).

use plan9::core::machine::{Machine, MachineBuilder};
use plan9::core::namespace::MREPL;
use plan9::core::proc::Proc;
use plan9::exportfs::exportfs::exportfs_listener;
use plan9::exportfs::import::import;
use plan9::inet::ip::IpConfig;
use plan9::netlog::trace::{self, RootSpan};
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::profile::Profiles;
use plan9::ninep::procfs::{OpenMode, ProcFs};
use std::sync::Arc;

/// The layers a span name maps to, in stack order.
const LAYERS: &[&str] = &[
    "marshal", "txwait", "devwrite", "il send", "ip tx", "wire tx", "queue", "reply", "handle",
];

fn layer_of(name: &str) -> Option<&'static str> {
    LAYERS.iter().copied().find(|l| name.starts_with(l))
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Fraction of the root interval covered by the union of its child
/// spans, clipped to the root.
fn coverage(root: &RootSpan) -> f64 {
    let mut iv: Vec<(u64, u64)> = root
        .spans
        .iter()
        .map(|s| (s.start_ns.max(root.start_ns), s.end_ns.min(root.end_ns)))
        .filter(|(a, b)| b > a)
        .collect();
    iv.sort();
    let mut covered = 0u64;
    let mut cursor = 0u64;
    for (a, b) in iv {
        let a = a.max(cursor);
        if b > a {
            covered += b - a;
            cursor = b;
        }
    }
    covered as f64 / root.dur_ns().max(1) as f64
}

fn is_client(root: &RootSpan) -> bool {
    !root.label.starts_with("serve")
}

fn has_recovery(root: &RootSpan) -> bool {
    root.events
        .iter()
        .any(|e| e.msg.starts_with("rexmit") || e.msg.starts_with("query"))
}

fn print_root(root: &RootSpan) {
    println!("trace {} {} {}us", root.id, root.label, root.dur_ns() / 1_000);
    for s in &root.spans {
        println!(
            "  span {} {} {}+{}us",
            s.facility.name(),
            s.name,
            (s.start_ns.saturating_sub(root.start_ns)) / 1_000,
            (s.end_ns.saturating_sub(s.start_ns)) / 1_000,
        );
    }
    for e in &root.events {
        println!(
            "  event {} {} @{}us",
            e.facility.name(),
            e.msg,
            (e.at_ns.saturating_sub(root.start_ns)) / 1_000,
        );
    }
}

fn boot() -> (Arc<Machine>, Arc<Machine>) {
    // 5% loss: enough for IL's query/retransmit machinery to show up
    // in a few hundred RPCs.
    let profile = Profiles::ether_fast().with_loss(0.05);
    let seg = EtherSegment::new(profile);
    let ndb = "\
sys=helix dom=helix.research.bell-labs.com ip=135.104.9.31 proto=il proto=tcp
sys=gnot ip=135.104.9.40 proto=il proto=tcp
";
    let helix = MachineBuilder::new("helix")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0xf0], IpConfig::local("135.104.9.31"))
        .ndb(ndb)
        .build()
        .expect("boot helix");
    let gnot = MachineBuilder::new("gnot")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0x40], IpConfig::local("135.104.9.40"))
        .ndb(ndb)
        .build()
        .expect("boot gnot");
    (helix, gnot)
}

/// The RPC workload: read a remote file over and over. Every iteration
/// is a walk/open/read/clunk sequence, each a traced 9P RPC.
fn workload(p: &Proc, path: &str, iters: usize) {
    for _ in 0..iters {
        let fd = p.open(path, OpenMode::READ).expect("open remote file");
        let data = p.read(fd, 4096).expect("read remote file");
        assert!(!data.is_empty(), "remote file came back empty");
        p.close(fd);
    }
}

fn main() {
    let off_mode = std::env::args().nth(1).map(|a| a == "off").unwrap_or(false);
    let (helix, gnot) = boot();
    helix
        .rootfs
        .put_file("/lib/blob", &vec![0x42u8; 1024])
        .expect("seed file");
    exportfs_listener(helix.proc(), "il!*!exportfs", usize::MAX).expect("exportfs listener");
    std::thread::sleep(std::time::Duration::from_millis(100));

    let p = gnot.proc();
    let tracer = trace::global();

    if off_mode {
        // Tracing is off by default; the workload must leave the span
        // ring untouched.
        let before = (tracer.len(), tracer.active_len());
        import(&p, "il!helix!exportfs", "/lib", "/n/helix", MREPL).expect("import");
        workload(&p, "/n/helix/blob", 20);
        let after = (tracer.len(), tracer.active_len());
        assert_eq!(before, after, "tracing off must add zero blocks to the span ring");
        println!("tracerpc off: ring unchanged at {}/{} roots: OK", after.0, after.1);
        return;
    }

    // Phase 1: RPCs over lossy IL.
    println!("gnot% echo trace on > /net/trace/ctl");
    let ctl = p.open("/net/trace/ctl", OpenMode::RDWR).expect("open trace ctl");
    p.write_str(ctl, "trace on").expect("trace on");

    import(&p, "il!helix!exportfs", "/lib", "/n/helix", MREPL).expect("import");
    workload(&p, "/n/helix/blob", 100);
    // Let trailing acks and any in-flight recovery land on their roots.
    std::thread::sleep(std::time::Duration::from_millis(300));

    let roots = tracer.roots();
    let client: Vec<&RootSpan> = roots.iter().filter(|r| is_client(r)).collect();
    assert!(client.len() >= 100, "expected a few hundred client RPCs, got {}", client.len());

    // Per-layer latency breakdown.
    println!("\nper-layer latency over {} client RPCs:", client.len());
    println!("{:<10} {:>6} {:>9} {:>9}", "layer", "spans", "p50(us)", "p99(us)");
    for layer in LAYERS {
        let mut durs: Vec<u64> = client
            .iter()
            .flat_map(|r| r.spans.iter())
            .filter(|s| layer_of(&s.name) == Some(*layer))
            .map(|s| s.end_ns.saturating_sub(s.start_ns) / 1_000)
            .collect();
        if durs.is_empty() {
            continue;
        }
        durs.sort_unstable();
        println!(
            "{:<10} {:>6} {:>9} {:>9}",
            layer,
            durs.len(),
            percentile(&durs, 0.50),
            percentile(&durs, 0.99),
        );
    }

    // The client's time must be accounted for by its children: the
    // marshal/txwait/reply partition guarantees >=90% coverage. The
    // gate is duration-weighted across all RPCs — on the real clock
    // an OS preemption can open a gap inside any one ~100us RPC, but
    // it cannot erase a tenth of the whole workload.
    let mut worst = 1.0f64;
    let (mut covered_ns, mut total_ns) = (0u64, 0u64);
    for r in &client {
        let c = coverage(r);
        worst = worst.min(c);
        covered_ns += (c * r.dur_ns() as f64) as u64;
        total_ns += r.dur_ns();
    }
    let overall = covered_ns as f64 / total_ns.max(1) as f64;
    assert!(
        overall >= 0.90,
        "child spans cover only {:.0}% of the client's RPC time",
        overall * 100.0
    );
    println!(
        "\nchild-span coverage of client RPC time {:.1}% (worst single RPC {:.1}%)",
        overall * 100.0,
        worst * 100.0
    );

    // The retransmit-inflated tail, explained by its trace.
    let recovered: Vec<&&RootSpan> = client.iter().filter(|r| has_recovery(r)).collect();
    assert!(
        !recovered.is_empty(),
        "5% loss over {} RPCs produced no rexmit/query events",
        client.len()
    );
    let mean = |rs: &[&&RootSpan]| {
        rs.iter().map(|r| r.dur_ns() / 1_000).sum::<u64>() / rs.len().max(1) as u64
    };
    let clean: Vec<&&RootSpan> = client.iter().filter(|r| !has_recovery(r)).collect();
    let mut durs: Vec<u64> = client.iter().map(|r| r.dur_ns() / 1_000).collect();
    durs.sort_unstable();
    println!(
        "\nroot RPC p50 {}us p99 {}us; {} of {} RPCs needed IL recovery \
         (mean {}us vs {}us clean)",
        percentile(&durs, 0.50),
        percentile(&durs, 0.99),
        recovered.len(),
        client.len(),
        mean(&recovered),
        mean(&clean),
    );
    println!("\na retransmitted RPC, end to end:");
    print_root(recovered.iter().max_by_key(|r| r.dur_ns()).unwrap());

    // Phase 2: the same file tree mounted over a local pipe, so the
    // stream queues carry the 9P messages and their residency shows up
    // as `queue` spans inside the RPC.
    p.write_str(ctl, "clear").expect("clear ring");
    let (mfd, sfd) = p.pipe().expect("pipe");
    let io = p.io(sfd).expect("chan io");
    let sink = io.clone();
    let fs: Arc<dyn ProcFs> = gnot.rootfs.clone();
    std::thread::spawn(move || {
        let _ = plan9::ninep::server::serve(fs, Box::new(io), Box::new(sink));
    });
    p.mount_fd(mfd, "", "/n/self", MREPL, false).expect("mount pipe");
    workload(&p, "/n/self/lib/ndb/local", 10);
    std::thread::sleep(std::time::Duration::from_millis(100));

    let roots = tracer.roots();
    let queued = roots
        .iter()
        .filter(|r| is_client(r))
        .find(|r| r.spans.iter().any(|s| s.name == "queue"))
        .expect("no client RPC carried a queue-residency span over the pipe mount");
    println!("\nthe same RPC over a pipe mount, stream queues visible:");
    print_root(queued);

    println!("\ngnot% echo trace off > /net/trace/ctl");
    p.write_str(ctl, "trace off").expect("trace off");
    p.close(ctl);
    println!("\ntracerpc: OK");
}
