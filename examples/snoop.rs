//! The §2.2 diagnostic interface: a snooper on the Ethernet device.
//!
//! "Writing the strings `promiscuous` and `connect -1` to the ctl file
//! configures a conversation to receive all packets on the Ethernet."
//! Any machine on the segment can watch everyone's traffic through the
//! same file interface programs use to send it — which is exactly how
//! Plan 9's snoopy worked.
//!
//! Run with `cargo run --example snoop`.

use plan9::core::dial::{accept, announce, dial, listen};
use plan9::core::machine::MachineBuilder;
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::{EtherFrame, EtherSegment};
use plan9::netsim::profile::Profiles;
use plan9::ninep::procfs::OpenMode;

fn main() {
    let seg = EtherSegment::new(Profiles::ether_fast());
    let ndb = "\
sys=alice ip=10.0.0.1 proto=il
sys=bob ip=10.0.0.2 proto=il
sys=monitor ip=10.0.0.3
";
    let alice = MachineBuilder::new("alice")
        .ether(&seg, [8, 0, 0, 0, 0, 1], IpConfig::local("10.0.0.1"))
        .ndb(ndb)
        .build()
        .expect("boot alice");
    let bob = MachineBuilder::new("bob")
        .ether(&seg, [8, 0, 0, 0, 0, 2], IpConfig::local("10.0.0.2"))
        .ndb(ndb)
        .build()
        .expect("boot bob");
    let monitor = MachineBuilder::new("monitor")
        .ether(&seg, [8, 0, 0, 0, 0, 3], IpConfig::local("10.0.0.3"))
        .ndb(ndb)
        .build()
        .expect("boot monitor");

    // The snooper: a conversation on monitor's ether device set to see
    // everything on the wire.
    let mp = monitor.proc();
    let ctl = mp
        .open("/net/ether0/clone", OpenMode::RDWR)
        .expect("open clone");
    let n = String::from_utf8(mp.read(ctl, 16).expect("read n")).expect("utf8");
    mp.write_str(ctl, "promiscuous").expect("promiscuous");
    mp.write_str(ctl, "connect -1").expect("connect -1");
    let data = mp
        .open(&format!("/net/ether0/{n}/data"), OpenMode::READ)
        .expect("open data");
    let sniffer = std::thread::spawn(move || {
        let mut seen = Vec::new();
        // IL conversation = sync, data, acks...; grab the first dozen
        // frames, then report.
        for _ in 0..12 {
            let raw = mp.read(data, 4096).expect("read frame");
            if let Some(f) = EtherFrame::decode(&raw) {
                seen.push(format!(
                    "{} -> {}  type {:#06x}  {} bytes",
                    f.src[5], f.dst[5], f.ethertype, f.payload.len()
                ));
            }
        }
        seen
    });

    // Meanwhile alice and bob have a private IL conversation.
    let bp = bob.proc();
    std::thread::spawn(move || {
        let (_afd, adir) = announce(&bp, "il!*!9fs").expect("announce");
        let (lcfd, ldir) = listen(&bp, &adir).expect("listen");
        let dfd = accept(&bp, lcfd, &ldir).expect("accept");
        while let Ok(m) = bp.read(dfd, 8192) {
            if m.is_empty() {
                break;
            }
            let _ = bp.write(dfd, &m);
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    let ap = alice.proc();
    let conn = dial(&ap, "il!bob!9fs").expect("dial");
    for i in 0..4 {
        ap.write(conn.data_fd, format!("secret {i}").as_bytes())
            .expect("write");
        let _ = ap.read(conn.data_fd, 8192).expect("read");
    }

    println!("monitor% snoopy /net/ether0   # promiscuous + connect -1");
    for line in sniffer.join().expect("sniffer") {
        println!("  {line}");
    }
    println!("\nsnoop: OK (the diagnostic interface sees other hosts' traffic)");
}
